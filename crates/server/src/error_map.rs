//! Device results → RESP replies.
//!
//! The mapping is total over [`KvError`]: every fault the engine can
//! surface — including injected media faults and cross-layer corruption —
//! becomes a well-formed RESP reply on the wire instead of a dropped
//! connection. `KeyNotFound` is not an error at the protocol level: GET
//! answers the nil bulk and DEL/EXISTS answer `:0`, exactly like Redis.

use bytes::Bytes;
use rhik_kvssd::{BatchOp, BatchReply, KvError};

/// One wire-level reply, in the order the commands arrived. `Value`
/// keeps the payload as shared [`Bytes`] so a cache-tier hit is written
/// to the socket without ever being copied into the reply queue.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply {
    /// `+OK`
    Ok,
    /// `+PONG`
    Pong,
    /// `$-1` (GET miss)
    Nil,
    /// `:n` (DEL / EXISTS)
    Int(i64),
    /// `$len\r\n<payload>\r\n`
    Value(Bytes),
    /// `-…` (the message carries no leading `-`)
    Error(String),
}

impl Reply {
    /// Wire size in bytes (write-budget accounting before encoding).
    pub fn wire_bytes(&self) -> usize {
        match self {
            Reply::Ok => 5,
            Reply::Pong => 7,
            Reply::Nil => 5,
            Reply::Int(n) => 3 + n.to_string().len(),
            // `$` + digits + CRLF + payload + CRLF
            Reply::Value(v) => 1 + v.len().to_string().len() + 2 + v.len() + 2,
            Reply::Error(m) => 3 + m.len(),
        }
    }
}

/// The `-ERR` text for a device error, grouped by failure class so
/// clients can dispatch on a stable prefix:
///
/// | class | errors |
/// |---|---|
/// | `ERR io` | `ReadFault`, `Media`, `Corrupt` |
/// | `ERR device full` | `DeviceFull`, `IndexFull` |
/// | `ERR invalid argument` | `EmptyKey`, `KeyTooLarge`, `ValueTooLarge` |
/// | `ERR collision` | `KeyCollision`, `KeyRejected` |
/// | `ERR unsupported` | `Unsupported` |
pub fn error_text(err: &KvError) -> String {
    match err {
        KvError::ReadFault { .. } | KvError::Media(_) | KvError::Corrupt(_) => {
            format!("ERR io: {err}")
        }
        KvError::DeviceFull | KvError::IndexFull => format!("ERR device full: {err}"),
        KvError::EmptyKey | KvError::KeyTooLarge { .. } | KvError::ValueTooLarge { .. } => {
            format!("ERR invalid argument: {err}")
        }
        KvError::KeyCollision | KvError::KeyRejected => format!("ERR collision: {err}"),
        KvError::Unsupported(_) => format!("ERR unsupported: {err}"),
        // Reached only by ops whose mapping has no not-found rendering
        // (PUT); GET/DEL/EXISTS intercept this variant below.
        KvError::KeyNotFound => format!("ERR {err}"),
    }
}

/// Map one engine reply onto the wire. Infallible: every `BatchReply`
/// variant × every `KvError` variant has a rendering.
pub fn reply_for(reply: &BatchReply) -> Reply {
    match reply {
        BatchReply::Get(Ok(Some(value))) => Reply::Value(value.clone()),
        BatchReply::Get(Ok(None)) | BatchReply::Get(Err(KvError::KeyNotFound)) => Reply::Nil,
        BatchReply::Get(Err(e)) => Reply::Error(error_text(e)),
        BatchReply::Put(Ok(())) => Reply::Ok,
        BatchReply::Put(Err(e)) => Reply::Error(error_text(e)),
        BatchReply::Delete(Ok(())) => Reply::Int(1),
        BatchReply::Delete(Err(KvError::KeyNotFound)) => Reply::Int(0),
        BatchReply::Delete(Err(e)) => Reply::Error(error_text(e)),
        BatchReply::Exists(Ok(true)) => Reply::Int(1),
        BatchReply::Exists(Ok(false)) | BatchReply::Exists(Err(KvError::KeyNotFound)) => {
            Reply::Int(0)
        }
        BatchReply::Exists(Err(e)) => Reply::Error(error_text(e)),
    }
}

/// Debug-readable op name for telemetry labels.
pub fn op_name(op: &BatchOp) -> &'static str {
    match op {
        BatchOp::Get { .. } => "get",
        BatchOp::Put { .. } => "set",
        BatchOp::Delete { .. } => "del",
        BatchOp::Exists { .. } => "exists",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhik_nand::Ppa;

    /// The table the satellite task asks for: every `KvError` variant ×
    /// the op kinds it can surface on, with the expected wire rendering.
    #[test]
    fn error_table_is_total_and_stable() {
        let all_errors = [
            KvError::KeyNotFound,
            KvError::KeyCollision,
            KvError::KeyRejected,
            KvError::DeviceFull,
            KvError::IndexFull,
            KvError::ValueTooLarge { len: 9, max: 4 },
            KvError::KeyTooLarge { len: 600 },
            KvError::EmptyKey,
            KvError::Unsupported("iterate"),
            KvError::ReadFault { ppa: Ppa::new(3, 7) },
            KvError::Media("worn out".into()),
            KvError::Corrupt("directory disagrees".into()),
        ];
        // (error index, expected class prefix) — the contract clients
        // dispatch on. KeyNotFound has per-op renderings checked below.
        let class: [(usize, &str); 11] = [
            (1, "ERR collision"),
            (2, "ERR collision"),
            (3, "ERR device full"),
            (4, "ERR device full"),
            (5, "ERR invalid argument"),
            (6, "ERR invalid argument"),
            (7, "ERR invalid argument"),
            (8, "ERR unsupported"),
            (9, "ERR io"),
            (10, "ERR io"),
            (11, "ERR io"),
        ];
        for (idx, prefix) in class {
            let err = all_errors[idx].clone();
            for reply in [
                reply_for(&BatchReply::Get(Err(err.clone()))),
                reply_for(&BatchReply::Put(Err(err.clone()))),
                reply_for(&BatchReply::Delete(Err(err.clone()))),
                reply_for(&BatchReply::Exists(Err(err.clone()))),
            ] {
                match reply {
                    Reply::Error(msg) => {
                        assert!(msg.starts_with(prefix), "{err:?} rendered as {msg:?}")
                    }
                    other => panic!("{err:?} must map to an error reply, got {other:?}"),
                }
            }
        }
        // Not-found is data, not an error: nil bulk for GET, 0 for
        // DEL/EXISTS — so lookup misses never read as device faults.
        assert_eq!(reply_for(&BatchReply::Get(Err(KvError::KeyNotFound))), Reply::Nil);
        assert_eq!(reply_for(&BatchReply::Get(Ok(None))), Reply::Nil);
        assert_eq!(reply_for(&BatchReply::Delete(Err(KvError::KeyNotFound))), Reply::Int(0));
        assert_eq!(reply_for(&BatchReply::Exists(Err(KvError::KeyNotFound))), Reply::Int(0));
        // And a Put not-found (cannot happen today) still renders.
        assert!(matches!(reply_for(&BatchReply::Put(Err(KvError::KeyNotFound))), Reply::Error(_)));
    }

    #[test]
    fn success_replies() {
        assert_eq!(reply_for(&BatchReply::Put(Ok(()))), Reply::Ok);
        assert_eq!(reply_for(&BatchReply::Delete(Ok(()))), Reply::Int(1));
        assert_eq!(reply_for(&BatchReply::Exists(Ok(true))), Reply::Int(1));
        assert_eq!(reply_for(&BatchReply::Exists(Ok(false))), Reply::Int(0));
        match reply_for(&BatchReply::Get(Ok(Some(Bytes::from(&b"v"[..]))))) {
            Reply::Value(v) => assert_eq!(&v[..], b"v"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wire_bytes_matches_encoding() {
        use crate::resp;
        for reply in [
            Reply::Ok,
            Reply::Pong,
            Reply::Nil,
            Reply::Int(0),
            Reply::Int(-12),
            Reply::Value(Bytes::from(&b"hello"[..])),
            Reply::Error("ERR io: boom".into()),
        ] {
            let mut out = Vec::new();
            match &reply {
                Reply::Ok => resp::enc_simple(&mut out, "OK"),
                Reply::Pong => resp::enc_simple(&mut out, "PONG"),
                Reply::Nil => resp::enc_nil(&mut out),
                Reply::Int(n) => resp::enc_int(&mut out, *n),
                Reply::Value(v) => resp::enc_bulk(&mut out, v),
                Reply::Error(m) => resp::enc_error(&mut out, m),
            }
            assert_eq!(out.len(), reply.wire_bytes(), "{reply:?}");
        }
    }
}
