//! Zero-copy incremental RESP2 parser + reply encoder.
//!
//! The parser consumes request frames (`*N\r\n` arrays of `$len\r\n` bulk
//! strings — the only request shape real Redis clients send) directly out
//! of a connection's read buffer. Nothing is copied at parse time: a
//! successful parse yields `(offset, len)` ranges into the caller's
//! buffer, and the caller copies each argument exactly once, when (and
//! only when) the op is enqueued for submission. Partial frames report
//! [`Parse::Incomplete`] and cost O(bytes scanned); the caller reads more
//! and retries from the same offset.
//!
//! Every malformed input maps to a typed [`ProtocolError`] — never a
//! panic, and never a silently stuck connection: the server replies with
//! the error's RESP rendering and closes, exactly like Redis on a
//! protocol error. Declared lengths are validated *before* any buffering
//! decision, so a client announcing a 2 GiB bulk is rejected from the
//! 14-byte header alone — the bounded-memory story starts here.

/// Hard ceiling on header digits (`*N` / `$N`). 10 digits covers every
/// length the limits below could admit; anything longer is garbage.
const MAX_HEADER_DIGITS: usize = 10;

/// Parser limits, derived from the server config. Both bound memory:
/// an op can never buffer more than `max_args × max_bulk` bytes.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum elements in a request array (our commands take ≤ 3).
    pub max_args: usize,
    /// Maximum bytes in one bulk string (keys *and* values).
    pub max_bulk: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits { max_args: 8, max_bulk: 512 * 1024 }
    }
}

/// Typed protocol violations. `message()` is the RESP error rendering;
/// the connection closes after it is written (Redis semantics).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// Frame began with something other than `*` (inline commands are
    /// not part of the subset).
    ExpectedArray { found: u8 },
    /// Array element began with something other than `$`.
    ExpectedBulk { found: u8 },
    /// A `*`/`$` header length was not a plain non-negative decimal.
    BadLength,
    /// Header line ran on without CRLF past any sane length.
    HeaderTooLong,
    /// A bulk string's payload was not followed by CRLF.
    MissingCrlf,
    /// `*0\r\n` — an array with no command name.
    EmptyCommand,
    /// More array elements than [`Limits::max_args`].
    TooManyArgs { count: usize, max: usize },
    /// Declared bulk length above [`Limits::max_bulk`].
    BulkTooLarge { len: usize, max: usize },
}

impl ProtocolError {
    /// The `-ERR` line sent to the client before closing.
    pub fn message(&self) -> String {
        match self {
            ProtocolError::ExpectedArray { found } => {
                format!("ERR Protocol error: expected '*', got '{}'", printable(*found))
            }
            ProtocolError::ExpectedBulk { found } => {
                format!("ERR Protocol error: expected '$', got '{}'", printable(*found))
            }
            ProtocolError::BadLength => "ERR Protocol error: invalid length".to_string(),
            ProtocolError::HeaderTooLong => {
                "ERR Protocol error: too big inline request".to_string()
            }
            ProtocolError::MissingCrlf => "ERR Protocol error: missing CRLF".to_string(),
            ProtocolError::EmptyCommand => "ERR Protocol error: empty command".to_string(),
            ProtocolError::TooManyArgs { count, max } => {
                format!("ERR Protocol error: {count} arguments (max {max})")
            }
            ProtocolError::BulkTooLarge { len, max } => {
                format!("ERR Protocol error: invalid bulk length {len} (max {max})")
            }
        }
    }
}

fn printable(b: u8) -> char {
    if b.is_ascii_graphic() {
        b as char
    } else {
        '?'
    }
}

/// One parse attempt's outcome.
#[derive(Debug, PartialEq, Eq)]
pub enum Parse {
    /// Need more bytes; nothing consumed.
    Incomplete,
    /// One whole frame: `args` (cleared first) holds `(offset, len)`
    /// ranges into the input buffer; `consumed` bytes belong to it.
    Frame { consumed: usize },
}

/// Parse one request frame from `buf`, writing argument ranges into
/// `args` (a caller-owned scratch vector, so steady-state parsing never
/// allocates). Returns [`Parse::Incomplete`] until a full frame is
/// buffered; errors are terminal for the connection.
pub fn parse_frame(
    buf: &[u8],
    limits: &Limits,
    args: &mut Vec<(usize, usize)>,
) -> Result<Parse, ProtocolError> {
    args.clear();
    if buf.is_empty() {
        return Ok(Parse::Incomplete);
    }
    if buf[0] != b'*' {
        return Err(ProtocolError::ExpectedArray { found: buf[0] });
    }
    let (count, mut pos) = match parse_header(buf, 0)? {
        Some(h) => h,
        None => return Ok(Parse::Incomplete),
    };
    if count == 0 {
        return Err(ProtocolError::EmptyCommand);
    }
    if count > limits.max_args {
        return Err(ProtocolError::TooManyArgs { count, max: limits.max_args });
    }
    for _ in 0..count {
        match buf.get(pos) {
            None => return Ok(Parse::Incomplete),
            Some(b'$') => {}
            Some(&other) => return Err(ProtocolError::ExpectedBulk { found: other }),
        }
        let (len, payload) = match parse_header(buf, pos)? {
            Some(h) => h,
            None => return Ok(Parse::Incomplete),
        };
        if len > limits.max_bulk {
            return Err(ProtocolError::BulkTooLarge { len, max: limits.max_bulk });
        }
        // Payload + trailing CRLF must be fully buffered.
        let end = payload + len;
        match (buf.get(end), buf.get(end + 1)) {
            (Some(b'\r'), Some(b'\n')) => {}
            (Some(b'\r'), None) | (None, _) => return Ok(Parse::Incomplete),
            _ => return Err(ProtocolError::MissingCrlf),
        }
        args.push((payload, len));
        pos = end + 2;
    }
    Ok(Parse::Frame { consumed: pos })
}

/// Parse a `*N\r\n` / `$N\r\n` header starting at `pos` (the sigil).
/// `Ok(Some((n, after)))` on success, `Ok(None)` when more bytes are
/// needed, error on malformed digits or a runaway header line.
fn parse_header(buf: &[u8], pos: usize) -> Result<Option<(usize, usize)>, ProtocolError> {
    let digits = &buf[pos + 1..];
    let mut n: usize = 0;
    for (i, &b) in digits.iter().enumerate() {
        match b {
            b'0'..=b'9' => {
                if i >= MAX_HEADER_DIGITS {
                    return Err(ProtocolError::HeaderTooLong);
                }
                n = n * 10 + (b - b'0') as usize;
            }
            b'\r' => {
                if i == 0 {
                    return Err(ProtocolError::BadLength);
                }
                return match digits.get(i + 1) {
                    Some(b'\n') => Ok(Some((n, pos + 1 + i + 2))),
                    Some(_) => Err(ProtocolError::MissingCrlf),
                    None => Ok(None),
                };
            }
            // `$-1` and friends are reply syntax, not request syntax.
            _ => return Err(ProtocolError::BadLength),
        }
    }
    Ok(None)
}

// -------------------------------------------------------------- commands

/// The decoded command subset, borrowing from the read buffer.
#[derive(Debug, PartialEq, Eq)]
pub enum Cmd<'a> {
    Get {
        key: &'a [u8],
    },
    Set {
        key: &'a [u8],
        value: &'a [u8],
    },
    Del {
        key: &'a [u8],
    },
    Exists {
        key: &'a [u8],
    },
    Ping,
    /// `AUTH <tenant>` binds the connection to a tenant's budgets.
    Auth {
        tenant: &'a [u8],
    },
    Quit,
}

/// Command-level (not wire-level) rejections. These reply `-ERR` but do
/// *not* close the connection — the frame itself was well-formed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CmdError {
    Unknown { name: String },
    Arity { cmd: &'static str },
}

impl CmdError {
    pub fn message(&self) -> String {
        match self {
            CmdError::Unknown { name } => format!("ERR unknown command '{name}'"),
            CmdError::Arity { cmd } => {
                format!("ERR wrong number of arguments for '{cmd}' command")
            }
        }
    }
}

/// Map a parsed argument vector onto the command subset.
pub fn decode<'a>(buf: &'a [u8], args: &[(usize, usize)]) -> Result<Cmd<'a>, CmdError> {
    let arg = |i: usize| -> &'a [u8] {
        let (off, len) = args[i];
        &buf[off..off + len]
    };
    let name = arg(0);
    let is = |s: &str| name.eq_ignore_ascii_case(s.as_bytes());
    if is("GET") {
        if args.len() != 2 {
            return Err(CmdError::Arity { cmd: "get" });
        }
        Ok(Cmd::Get { key: arg(1) })
    } else if is("SET") {
        if args.len() != 3 {
            return Err(CmdError::Arity { cmd: "set" });
        }
        Ok(Cmd::Set { key: arg(1), value: arg(2) })
    } else if is("DEL") {
        if args.len() != 2 {
            return Err(CmdError::Arity { cmd: "del" });
        }
        Ok(Cmd::Del { key: arg(1) })
    } else if is("EXISTS") {
        if args.len() != 2 {
            return Err(CmdError::Arity { cmd: "exists" });
        }
        Ok(Cmd::Exists { key: arg(1) })
    } else if is("PING") {
        if args.len() != 1 {
            return Err(CmdError::Arity { cmd: "ping" });
        }
        Ok(Cmd::Ping)
    } else if is("AUTH") {
        // Redis AUTH is `AUTH password` or `AUTH user password`; we read
        // the first operand as the tenant name and ignore a password.
        if args.len() != 2 && args.len() != 3 {
            return Err(CmdError::Arity { cmd: "auth" });
        }
        Ok(Cmd::Auth { tenant: arg(1) })
    } else if is("QUIT") {
        Ok(Cmd::Quit)
    } else {
        let name = String::from_utf8_lossy(&name[..name.len().min(32)]).into_owned();
        Err(CmdError::Unknown { name })
    }
}

// -------------------------------------------------------------- encoding

/// Append `+s\r\n`.
pub fn enc_simple(out: &mut Vec<u8>, s: &str) {
    out.push(b'+');
    out.extend_from_slice(s.as_bytes());
    out.extend_from_slice(b"\r\n");
}

/// Append `-msg\r\n`.
pub fn enc_error(out: &mut Vec<u8>, msg: &str) {
    out.push(b'-');
    out.extend_from_slice(msg.as_bytes());
    out.extend_from_slice(b"\r\n");
}

/// Append `:n\r\n`.
pub fn enc_int(out: &mut Vec<u8>, n: i64) {
    out.push(b':');
    out.extend_from_slice(n.to_string().as_bytes());
    out.extend_from_slice(b"\r\n");
}

/// Append the nil bulk `$-1\r\n`.
pub fn enc_nil(out: &mut Vec<u8>) {
    out.extend_from_slice(b"$-1\r\n");
}

/// Append only the `$len\r\n` header — the payload itself rides as its
/// own vectored-write chunk (zero-copy for cached/shared values), and
/// [`enc_crlf`] closes the frame.
pub fn enc_bulk_header(out: &mut Vec<u8>, len: usize) {
    out.push(b'$');
    out.extend_from_slice(len.to_string().as_bytes());
    out.extend_from_slice(b"\r\n");
}

/// Append the CRLF that terminates a bulk payload.
pub fn enc_crlf(out: &mut Vec<u8>) {
    out.extend_from_slice(b"\r\n");
}

/// Append a whole inline bulk string (small payloads, client side).
pub fn enc_bulk(out: &mut Vec<u8>, data: &[u8]) {
    enc_bulk_header(out, data.len());
    out.extend_from_slice(data);
    enc_crlf(out);
}

/// Encode a request frame (client side: benches, tests).
pub fn enc_command(out: &mut Vec<u8>, args: &[&[u8]]) {
    out.push(b'*');
    out.extend_from_slice(args.len().to_string().as_bytes());
    out.extend_from_slice(b"\r\n");
    for a in args {
        enc_bulk(out, a);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(input: &[u8]) -> Result<Vec<Vec<Vec<u8>>>, ProtocolError> {
        let limits = Limits::default();
        let mut args = Vec::new();
        let mut frames = Vec::new();
        let mut pos = 0;
        loop {
            match parse_frame(&input[pos..], &limits, &mut args)? {
                Parse::Incomplete => return Ok(frames),
                Parse::Frame { consumed } => {
                    frames.push(
                        args.iter()
                            .map(|&(off, len)| input[pos + off..pos + off + len].to_vec())
                            .collect(),
                    );
                    pos += consumed;
                }
            }
        }
    }

    #[test]
    fn parses_whole_pipeline() {
        let mut buf = Vec::new();
        enc_command(&mut buf, &[b"SET", b"k1", b"v1"]);
        enc_command(&mut buf, &[b"GET", b"k1"]);
        enc_command(&mut buf, &[b"PING"]);
        let frames = parse_all(&buf).unwrap();
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0], vec![b"SET".to_vec(), b"k1".to_vec(), b"v1".to_vec()]);
        assert_eq!(frames[2], vec![b"PING".to_vec()]);
    }

    #[test]
    fn incomplete_at_every_prefix() {
        let mut buf = Vec::new();
        enc_command(&mut buf, &[b"SET", b"key-x", b"value-y"]);
        let limits = Limits::default();
        let mut args = Vec::new();
        for cut in 0..buf.len() {
            let r = parse_frame(&buf[..cut], &limits, &mut args).unwrap();
            assert_eq!(r, Parse::Incomplete, "prefix of {cut} bytes must be incomplete");
        }
        match parse_frame(&buf, &limits, &mut args).unwrap() {
            Parse::Frame { consumed } => assert_eq!(consumed, buf.len()),
            other => panic!("full frame not parsed: {other:?}"),
        }
    }

    #[test]
    fn typed_errors_not_panics() {
        let limits = Limits { max_args: 4, max_bulk: 16 };
        let mut args = Vec::new();
        let cases: &[(&[u8], ProtocolError)] = &[
            (b"GET k\r\n", ProtocolError::ExpectedArray { found: b'G' }),
            (b"*0\r\n", ProtocolError::EmptyCommand),
            (b"*1\r\n+OK\r\n", ProtocolError::ExpectedBulk { found: b'+' }),
            (b"*1\r\n$\r\n", ProtocolError::BadLength),
            (b"*-1\r\n", ProtocolError::BadLength),
            (b"*1\r\n$5x\r\n", ProtocolError::BadLength),
            (b"*1\r\n$2\rXab\r\n", ProtocolError::MissingCrlf),
            (b"*1\r\n$3\r\nabcd\r\n", ProtocolError::MissingCrlf),
            (b"*9\r\n", ProtocolError::TooManyArgs { count: 9, max: 4 }),
            (b"*1\r\n$99\r\n", ProtocolError::BulkTooLarge { len: 99, max: 16 }),
            (b"*99999999999999\r\n", ProtocolError::HeaderTooLong),
            (b"*123456789012345", ProtocolError::HeaderTooLong),
        ];
        for (input, want) in cases {
            let got = parse_frame(input, &limits, &mut args).unwrap_err();
            assert_eq!(&got, want, "input {:?}", String::from_utf8_lossy(input));
            assert!(got.message().starts_with("ERR Protocol error"));
        }
    }

    #[test]
    fn oversized_bulk_rejected_from_header_alone() {
        // The 2 GiB announcement is rejected before any payload arrives.
        let limits = Limits { max_args: 8, max_bulk: 1024 };
        let mut args = Vec::new();
        let got = parse_frame(b"*2\r\n$3\r\nSET\r\n$2147483647\r\n", &limits, &mut args);
        assert_eq!(got.unwrap_err(), ProtocolError::BulkTooLarge { len: 2147483647, max: 1024 });
    }

    #[test]
    fn decode_maps_the_subset() {
        let mut buf = Vec::new();
        enc_command(&mut buf, &[b"set", b"k", b"v"]);
        let mut args = Vec::new();
        let limits = Limits::default();
        match parse_frame(&buf, &limits, &mut args).unwrap() {
            Parse::Frame { .. } => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(decode(&buf, &args).unwrap(), Cmd::Set { key: b"k", value: b"v" });

        let cases: &[(&[&[u8]], Cmd<'_>)] = &[
            (&[b"GET", b"k"], Cmd::Get { key: b"k" }),
            (&[b"DEL", b"k"], Cmd::Del { key: b"k" }),
            (&[b"EXISTS", b"k"], Cmd::Exists { key: b"k" }),
            (&[b"PING"], Cmd::Ping),
            (&[b"AUTH", b"t1"], Cmd::Auth { tenant: b"t1" }),
            (&[b"QUIT"], Cmd::Quit),
        ];
        for (line, want) in cases {
            let mut buf = Vec::new();
            enc_command(&mut buf, line);
            parse_frame(&buf, &limits, &mut args).unwrap();
            assert_eq!(&decode(&buf, &args).unwrap(), want);
        }

        let mut buf = Vec::new();
        enc_command(&mut buf, &[b"FLUSHALL"]);
        parse_frame(&buf, &limits, &mut args).unwrap();
        assert!(matches!(decode(&buf, &args), Err(CmdError::Unknown { .. })));

        let mut buf = Vec::new();
        enc_command(&mut buf, &[b"GET"]);
        parse_frame(&buf, &limits, &mut args).unwrap();
        assert_eq!(decode(&buf, &args), Err(CmdError::Arity { cmd: "get" }));
    }

    #[test]
    fn encoders_produce_wire_format() {
        let mut out = Vec::new();
        enc_simple(&mut out, "OK");
        enc_error(&mut out, "ERR boom");
        enc_int(&mut out, 42);
        enc_nil(&mut out);
        enc_bulk(&mut out, b"hi");
        assert_eq!(&out[..], b"+OK\r\n-ERR boom\r\n:42\r\n$-1\r\n$2\r\nhi\r\n".as_slice());
    }
}
