//! The service loop: thread-per-core workers over nonblocking sockets.
//!
//! No async runtime and no OS event queue — the build environment is
//! std-only, so workers run a poll loop instead: try-accept, pump every
//! owned connection (deliver replies → flush → read → parse/enqueue),
//! then drain shard queues. Each stage reports whether it made progress;
//! a fully idle pass sleeps a few tens of microseconds so an idle server
//! costs ~no CPU while a loaded one never sleeps at all.
//!
//! The pipelining win happens in two places. On the way in, one socket
//! read hands the parser an entire pipeline and every complete frame is
//! enqueued before the connection is revisited; ops land in per-shard
//! DRR queues and ride [`ShardedKvssd::submit_batch`] as one batch —
//! one shard-lock acquisition and one group-commit hand-off for the
//! whole batch instead of per-op. On the way out, replies coalesce into
//! one vectored write. N pipelined ops ≈ 2 syscalls + one shard handoff.
//!
//! Backpressure is a chain of bounded stages, each gating the previous:
//! socket reads stop at the read high-watermark, frame consumption stops
//! when the pending ring / write budget / tenant bucket / shard lane is
//! full, and TCP pushes the stall back to the client.

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use rhik_ftl::sync::{Counter, Mutex};
use rhik_ftl::IndexBackend;
use rhik_kvssd::{BatchOp, ShardedKvssd};
use rhik_telemetry::TelemetrySink;

use crate::admission::{DrrQueue, TenantRegistry, TenantSpec};
use crate::conn::{Connection, Mailbox};
use crate::error_map::{reply_for, Reply};
use crate::resp::{self, Cmd, Limits, Parse};

/// Everything tunable about one server instance. Defaults suit tests
/// and the loopback bench; the binary exposes the interesting ones.
#[derive(Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (read it back via
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads (each owns the connections it accepted).
    pub workers: usize,
    /// Wire-format limits (argument count, bulk size).
    pub limits: Limits,
    /// Max in-flight ops per connection (reply-ring capacity).
    pub max_pipeline: usize,
    /// Read-buffer high watermark per connection; raised internally to
    /// always fit one maximal frame so a slow sender still progresses.
    pub read_high: usize,
    /// Stop consuming new frames once this many reply bytes are queued.
    pub write_budget: usize,
    /// Per-tenant per-shard submission-lane capacity (ops).
    pub lane_cap: usize,
    /// Max ops per `submit_batch` call.
    pub max_batch: usize,
    /// DRR quantum in payload bytes per lane visit.
    pub quantum_bytes: usize,
    /// Accepted connections per worker; beyond this, accepts are refused.
    pub max_conns: usize,
    /// Sleep for a fully idle poll pass.
    pub idle_sleep_us: u64,
    /// Tenant set; a `default` unlimited tenant is added if absent.
    pub tenants: Vec<TenantSpec>,
    /// Sink for per-tenant counters (disabled by default).
    pub telemetry: TelemetrySink,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            limits: Limits::default(),
            max_pipeline: 128,
            read_high: 64 * 1024,
            write_budget: 256 * 1024,
            lane_cap: 256,
            max_batch: 64,
            quantum_bytes: 2048,
            max_conns: 1024,
            idle_sleep_us: 50,
            tenants: Vec::new(), // bounded-by: fixed config-time tenant list; never grows after startup
            telemetry: TelemetrySink::disabled(),
        }
    }
}

impl ServerConfig {
    /// Largest wire frame the limits admit (headers included).
    pub fn max_frame_bytes(&self) -> usize {
        16 + self.limits.max_args * (self.limits.max_bulk + 32)
    }

    /// Effective read high-watermark: the configured value, raised to
    /// fit one maximal frame (otherwise a legal frame could never
    /// finish buffering).
    pub fn effective_read_high(&self) -> usize {
        self.read_high.max(self.max_frame_bytes())
    }

    /// Worst-case bytes one connection may buffer: full read buffer +
    /// full write budget + every in-flight slot completing with a
    /// maximal reply after the budget gate closed. The backpressure
    /// test holds a stalled client against this bound.
    pub fn per_conn_budget(&self) -> usize {
        let max_reply = self.limits.max_bulk + 32;
        self.effective_read_high() + self.write_budget + self.max_pipeline * max_reply
    }
}

/// One op waiting in a shard's DRR lane.
struct QueuedOp {
    op: BatchOp,
    slot: u64,
    mailbox: Arc<Mailbox>,
    tenant: usize,
}

/// State shared by all workers and the handle.
struct Shared<I: IndexBackend + Send> {
    device: ShardedKvssd<I>,
    /// One DRR queue per device shard.
    queues: Vec<Mutex<DrrQueue<QueuedOp>>>,
    /// One drain claim per shard, held across assemble *and* submit.
    /// The queue lock alone only serializes assembly: if two workers
    /// each assembled a batch for the same shard and then raced into
    /// `submit_batch`, consecutively-assembled batches could execute
    /// out of assembly order and break pipelined read-your-writes
    /// (a SET and a later GET of the same key split across batches).
    drain_claims: Vec<Mutex<()>>,
    registry: TenantRegistry,
    cfg: ServerConfig,
    read_high: usize,
    shutdown: Counter,
    ops_served: Counter,
    conns_accepted: Counter,
    conns_refused: Counter,
    /// High watermark of any connection's buffered bytes (budget gauge).
    conn_buffer_high: Counter,
}

/// A running server. Dropping the handle shuts the server down.
pub struct ServerHandle<I: IndexBackend + Send + 'static> {
    addr: SocketAddr,
    shared: Arc<Shared<I>>,
    joins: Vec<JoinHandle<()>>,
}

/// Bind, spawn workers, serve. The device is shared with the caller
/// (`ShardedKvssd` clones share all state), so tests and benches can
/// inspect or audit it while the server runs.
pub fn start<I: IndexBackend + Send + 'static>(
    device: ShardedKvssd<I>,
    cfg: ServerConfig,
) -> io::Result<ServerHandle<I>> {
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let registry = TenantRegistry::new(cfg.tenants.clone());
    let weights: Vec<u32> = registry.all().iter().map(|t| t.spec.weight).collect();
    let queues = (0..device.shard_count())
        .map(|_| Mutex::new(DrrQueue::new(cfg.quantum_bytes, cfg.lane_cap, &weights)))
        .collect();
    let drain_claims = (0..device.shard_count()).map(|_| Mutex::new(())).collect();

    let read_high = cfg.effective_read_high();
    let workers = cfg.workers.max(1);
    let shared = Arc::new(Shared {
        device,
        queues,
        drain_claims,
        registry,
        read_high,
        cfg,
        shutdown: Counter::new(),
        ops_served: Counter::new(),
        conns_accepted: Counter::new(),
        conns_refused: Counter::new(),
        conn_buffer_high: Counter::new(),
    });

    let listener = Arc::new(listener);
    let joins = (0..workers)
        .map(|id| {
            let listener = Arc::clone(&listener);
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name(format!("rhik-server-{id}"))
                .spawn(move || worker_loop(listener, shared))
        })
        .collect::<io::Result<Vec<_>>>()?;

    Ok(ServerHandle { addr, shared, joins })
}

impl<I: IndexBackend + Send + 'static> ServerHandle<I> {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn device(&self) -> &ShardedKvssd<I> {
        &self.shared.device
    }

    pub fn tenants(&self) -> &TenantRegistry {
        &self.shared.registry
    }

    /// Ops completed through `submit_batch` (KV ops only; PING and
    /// friends answer at the parser and are not counted here).
    pub fn ops_served(&self) -> u64 {
        self.shared.ops_served.get()
    }

    pub fn connections_accepted(&self) -> u64 {
        self.shared.conns_accepted.get()
    }

    /// Highest `buffered_bytes` any connection has reached — compared
    /// against [`ServerConfig::per_conn_budget`] by the memory test.
    pub fn conn_buffer_high_watermark(&self) -> u64 {
        self.shared.conn_buffer_high.get()
    }

    pub fn per_conn_budget(&self) -> usize {
        self.shared.cfg.per_conn_budget()
    }

    /// Signal shutdown and join every worker. Idempotent via `Drop`.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutdown.set(1);
        for j in self.joins.drain(..) {
            let _ = j.join();
        }
        // Final per-tenant counter publication so short-lived servers
        // still leave a telemetry trace.
        let sink = &self.shared.cfg.telemetry;
        for t in self.shared.registry.all() {
            sink.counter_add(&t.metric_throttled, t.stats.throttled.get());
        }
    }
}

impl<I: IndexBackend + Send + 'static> Drop for ServerHandle<I> {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn worker_loop<I: IndexBackend + Send>(listener: Arc<TcpListener>, shared: Arc<Shared<I>>) {
    let cfg = &shared.cfg;
    let mut conns: Vec<Connection> = Vec::new();
    let mut batch: Vec<QueuedOp> = Vec::with_capacity(cfg.max_batch);
    let mut ops: Vec<BatchOp> = Vec::with_capacity(cfg.max_batch);
    let mut meta: Vec<(u64, Arc<Mailbox>, usize)> = Vec::with_capacity(cfg.max_batch);

    while shared.shutdown.get() == 0 {
        let mut progress = false;

        // Accept everything waiting; whichever worker polls first wins,
        // which spreads connections across workers well enough.
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    progress = true;
                    if conns.len() >= cfg.max_conns {
                        shared.conns_refused.incr();
                        drop(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    conns.push(Connection::new(stream, cfg.max_pipeline, 0));
                    shared.conns_accepted.incr();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }

        // Pump every connection; retire the drained and the broken.
        let mut i = 0;
        while i < conns.len() {
            match pump(&mut conns[i], &shared) {
                Ok(p) => {
                    progress |= p;
                    shared.conn_buffer_high.note_max(conns[i].buffered_bytes() as u64);
                    if conns[i].drained() {
                        conns.swap_remove(i);
                        progress = true;
                    } else {
                        i += 1;
                    }
                }
                Err(_) => {
                    conns.swap_remove(i);
                    progress = true;
                }
            }
        }

        // Drain shard queues: assemble under the queue lock, submit
        // outside it, post replies to each op's connection mailbox.
        // The per-shard claim keeps assembly order == execution order
        // (see `Shared::drain_claims`); a contended shard is simply
        // skipped this pass — the holder is already draining it.
        for shard in 0..shared.queues.len() {
            let Ok(_claim) = shared.drain_claims[shard].try_lock() else {
                continue;
            };
            batch.clear();
            {
                let mut q = shared.queues[shard].lock().unwrap_or_else(|p| p.into_inner());
                q.assemble(cfg.max_batch, &mut batch);
            }
            if batch.is_empty() {
                continue;
            }
            progress = true;
            ops.clear();
            meta.clear();
            for qop in batch.drain(..) {
                meta.push((qop.slot, qop.mailbox, qop.tenant));
                ops.push(qop.op);
            }
            let replies = shared.device.submit_batch(shard, &ops);
            shared.ops_served.add(replies.len() as u64);
            let sink = &cfg.telemetry;
            for (((slot, mailbox, tenant), reply), op) in
                meta.drain(..).zip(replies).zip(ops.iter())
            {
                let t = &shared.registry.all()[tenant];
                sink.counter_add(&t.metric_ops, 1);
                sink.counter_add(&t.metric_bytes, op.payload_bytes() as u64);
                mailbox.post(slot, reply_for(&reply));
            }
        }

        if !progress {
            thread::sleep(Duration::from_micros(cfg.idle_sleep_us));
        }
    }
}

/// One service pass over a connection. `Err` means the socket is dead;
/// the caller retires the connection.
fn pump<I: IndexBackend + Send>(conn: &mut Connection, shared: &Shared<I>) -> io::Result<bool> {
    let cfg = &shared.cfg;
    let mut progress = false;

    progress |= conn.collect_replies() > 0;
    progress |= conn.wq.flush(&mut conn.stream)? > 0;
    progress |= conn.fill(shared.read_high)? > 0;

    let mut saw_incomplete = false;
    while !conn.closing {
        // Gates: a full reply ring or a saturated write budget stops
        // frame consumption (and, transitively, socket reads).
        if !conn.pending.has_room() || conn.wq.bytes() >= cfg.write_budget {
            break;
        }
        match resp::parse_frame(&conn.buf[conn.cursor..], &cfg.limits, &mut conn.args) {
            Ok(Parse::Incomplete) => {
                saw_incomplete = true;
                break;
            }
            Err(perr) => {
                // Protocol error: reply, then close (Redis semantics).
                conn.wq.push_reply(&Reply::Error(perr.message()));
                conn.closing = true;
                progress = true;
                break;
            }
            Ok(Parse::Frame { consumed }) => {
                let frame = &conn.buf[conn.cursor..];
                match resp::decode(frame, &conn.args) {
                    Err(cerr) => {
                        // Well-formed frame, bad command: error reply,
                        // connection stays open.
                        let slot = conn.pending.alloc();
                        conn.pending.complete(slot, Reply::Error(cerr.message()));
                    }
                    Ok(Cmd::Ping) => {
                        let slot = conn.pending.alloc();
                        conn.pending.complete(slot, Reply::Pong);
                    }
                    Ok(Cmd::Quit) => {
                        let slot = conn.pending.alloc();
                        conn.pending.complete(slot, Reply::Ok);
                        conn.closing = true;
                    }
                    Ok(Cmd::Auth { tenant }) => {
                        let resolved = std::str::from_utf8(tenant)
                            .ok()
                            .and_then(|name| shared.registry.resolve(name));
                        let slot = conn.pending.alloc();
                        match resolved {
                            Some(t) => {
                                conn.tenant = t.id;
                                conn.pending.complete(slot, Reply::Ok);
                            }
                            None => {
                                let name = String::from_utf8_lossy(&tenant[..tenant.len().min(32)]);
                                conn.pending.complete(
                                    slot,
                                    Reply::Error(format!("ERR unknown tenant '{name}'")),
                                );
                            }
                        }
                    }
                    Ok(cmd) => {
                        // Split borrows: `cmd` still points into
                        // `conn.buf`, so hand the helper only the fields
                        // it needs.
                        if !enqueue_kv(&mut conn.pending, &conn.mailbox, conn.tenant, shared, &cmd)
                        {
                            // Throttled or lane full: leave the frame in
                            // the buffer and retry on a later pump.
                            break;
                        }
                    }
                }
                conn.cursor += consumed;
                progress = true;
            }
        }
    }
    // A half-closed peer can never complete a partial frame: give up on
    // the tail so the connection can drain and retire.
    if conn.eof && saw_incomplete && conn.buf.len() > conn.cursor {
        conn.closing = true;
    }

    // Release replies completed synchronously above (PING, errors).
    progress |= conn.collect_replies() > 0;
    progress |= conn.wq.flush(&mut conn.stream)? > 0;
    Ok(progress)
}

/// Admit one KV command and queue it on its shard. Returns `false` when
/// admission defers the op (quota empty or lane full) — the caller must
/// not consume the frame.
fn enqueue_kv<I: IndexBackend + Send>(
    pending: &mut crate::conn::PendingRing,
    mailbox: &Arc<Mailbox>,
    tenant_id: usize,
    shared: &Shared<I>,
    cmd: &Cmd<'_>,
) -> bool {
    let (key, value): (&[u8], &[u8]) = match cmd {
        Cmd::Get { key } | Cmd::Del { key } | Cmd::Exists { key } => (key, &[]),
        Cmd::Set { key, value } => (key, value),
        // Non-KV commands never reach this function.
        Cmd::Ping | Cmd::Auth { .. } | Cmd::Quit => return true,
    };
    let payload = key.len() + value.len();
    let shard = shared.device.shard_for_key(key);
    let tenant = &shared.registry.all()[tenant_id];

    // Lane-room check, quota take, and push happen under one shard-queue
    // lock so a concurrent filler can't invalidate the room check after
    // tokens are spent. Tenant bucket locks nest inside shard-queue
    // locks everywhere (and never the other way), so this can't deadlock.
    let mut q = shared.queues[shard].lock().unwrap_or_else(|p| p.into_inner());
    if !q.has_room(tenant_id) {
        tenant.stats.lane_full.incr();
        return false;
    }
    if !tenant.try_admit(payload) {
        return false;
    }
    let op = match cmd {
        Cmd::Get { key } => BatchOp::Get { key: key.to_vec() },
        Cmd::Set { key, value } => BatchOp::Put { key: key.to_vec(), value: value.to_vec() },
        Cmd::Del { key } => BatchOp::Delete { key: key.to_vec() },
        Cmd::Exists { key } => BatchOp::Exists { key: key.to_vec() },
        Cmd::Ping | Cmd::Auth { .. } | Cmd::Quit => return true,
    };
    let slot = pending.alloc();
    let queued = QueuedOp { op, slot, mailbox: Arc::clone(mailbox), tenant: tenant_id };
    if q.push(tenant_id, payload.max(64), queued).is_err() {
        // Unreachable given the room check above, but degrade to an
        // error reply rather than losing the slot.
        pending.complete(slot, Reply::Error("ERR server busy".to_string()));
    }
    true
}
