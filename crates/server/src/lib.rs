//! rhik-server: the network front end over [`rhik_kvssd::ShardedKvssd`].
//!
//! A RESP2-subset KV service (GET / SET / DEL / EXISTS / PING / AUTH /
//! QUIT) built for pipelined throughput on std-only networking:
//!
//! * **Zero-copy parse** ([`resp`]) — whole pipelines are consumed per
//!   socket read; arguments are `(offset, len)` ranges until the op is
//!   actually admitted.
//! * **Batched submission** ([`server`]) — ops coalesce in per-shard
//!   queues and ride [`rhik_kvssd::ShardedKvssd::submit_batch`], so a
//!   pipeline of N ops costs one shard hand-off, not N.
//! * **Vectored replies** ([`conn`]) — in-order replies coalesce into
//!   one `writev`; large values ride as shared [`bytes::Bytes`] chunks.
//! * **Multi-tenant admission** ([`admission`]) — token-bucket op/byte
//!   quotas at the socket edge, deficit-round-robin fairness at the
//!   shard edge, all queues bounded, backpressure all the way to TCP.
//!
//! DESIGN.md §4f covers the architecture; `crates/bench/src/bin/
//! server_load.rs` measures the pipelined-vs-naive gap end to end.

pub mod admission;
pub mod clock;
pub mod conn;
pub mod error_map;
pub mod resp;
pub mod server;

pub use admission::{DrrQueue, Tenant, TenantRegistry, TenantSpec};
pub use error_map::{error_text, reply_for, Reply};
pub use resp::{Cmd, CmdError, Limits, Parse, ProtocolError};
pub use server::{start, ServerConfig, ServerHandle};
