//! The server's single host-clock accessor.
//!
//! Everything else in the workspace runs on the simulated NAND clock;
//! the network front end is the one component that genuinely lives in
//! host time (token-bucket refill, rate accounting). wslint's
//! `instant-off-sim-clock` rule covers this crate, so every host-clock
//! read is funneled through this module's two vetted `Instant::now()`
//! call sites — nothing device-facing can accidentally mix clocks.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Monotonic nanoseconds since the first call in this process.
pub fn now_ns() -> u64 {
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now().saturating_duration_since(epoch).as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_and_advancing() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(now_ns() > a);
    }
}
