//! Stand-alone RESP KV server over an in-process emulated KVSSD.
//!
//! ```text
//! cargo run --release -p rhik-server --bin rhik_server -- \
//!     --addr 127.0.0.1:6399 --shards 4 --hot-cache 1048576 \
//!     --tenant capped:2000:0:1 --tenant batch:0:0:4
//! ```
//!
//! Tenants are `name:ops_per_sec:bytes_per_sec:weight` (0 = unlimited).
//! Clients bind to a tenant with `AUTH <name>`; unauthenticated
//! connections bill to the unlimited `default` tenant. Runs until
//! killed; `--duration-secs N` exits after N seconds (for smoke tests).

use std::sync::Arc;

use rhik_ftl::sync::Counter;
use rhik_kvssd::{DeviceConfig, ShardedKvssd};
use rhik_server::{ServerConfig, TenantSpec};

fn parse_tenant(spec: &str) -> Result<TenantSpec, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    if parts.len() != 4 {
        return Err(format!("tenant spec '{spec}' is not name:ops:bytes:weight"));
    }
    let num = |s: &str, what: &str| -> Result<u64, String> {
        s.parse::<u64>().map_err(|_| format!("bad {what} in tenant spec '{spec}'"))
    };
    Ok(TenantSpec {
        name: parts[0].to_string(),
        ops_per_sec: num(parts[1], "ops_per_sec")?,
        bytes_per_sec: num(parts[2], "bytes_per_sec")?,
        weight: num(parts[3], "weight")? as u32,
    })
}

fn main() {
    let mut cfg = ServerConfig::default();
    let mut shards: u32 = 4;
    let mut hot_cache: u64 = 4 * 1024 * 1024;
    let mut duration_secs: u64 = 0;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let (flag, inline) = match args[i].split_once('=') {
            Some((f, v)) => (f.to_string(), Some(v.to_string())),
            None => (args[i].clone(), None),
        };
        let mut value = |name: &str| -> String {
            match &inline {
                Some(v) => v.clone(),
                None => {
                    i += 1;
                    args.get(i).cloned().unwrap_or_else(|| {
                        eprintln!("missing value for {name}");
                        std::process::exit(2);
                    })
                }
            }
        };
        match flag.as_str() {
            "--addr" => cfg.addr = value("--addr"),
            "--workers" => cfg.workers = value("--workers").parse().unwrap_or(2),
            "--shards" => shards = value("--shards").parse().unwrap_or(4),
            "--hot-cache" => hot_cache = value("--hot-cache").parse().unwrap_or(hot_cache),
            "--max-pipeline" => cfg.max_pipeline = value("--max-pipeline").parse().unwrap_or(128),
            "--duration-secs" => duration_secs = value("--duration-secs").parse().unwrap_or(0),
            "--tenant" => match parse_tenant(&value("--tenant")) {
                Ok(t) => cfg.tenants.push(t),
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown flag {other}");
                eprintln!(
                    "flags: --addr A --workers N --shards N --hot-cache BYTES \
                     --max-pipeline N --duration-secs N --tenant name:ops:bytes:weight"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let device =
        ShardedKvssd::rhik(DeviceConfig::small().with_shards(shards).with_hot_cache(hot_cache));
    let handle = match rhik_server::start(device, cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!("rhik-server listening on {}", handle.addr());

    let stop = Arc::new(Counter::new());
    if duration_secs > 0 {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_secs(duration_secs));
            stop.set(1);
        });
    }
    while stop.get() == 0 {
        std::thread::sleep(std::time::Duration::from_millis(200));
    }
    let served = handle.ops_served();
    handle.shutdown();
    println!("rhik-server served {served} ops, shut down cleanly");
}
