//! Property tests: every baseline index matches a `HashMap<sig, ppa>`
//! model under arbitrary op sequences (the same contract RHIK's property
//! suite enforces — all four schemes must be interchangeable behind
//! `IndexBackend`).

use proptest::prelude::*;
use rhik_baseline::{LsmConfig, LsmIndex, MultiLevelConfig, MultiLevelIndex, SimpleHashIndex};
use rhik_ftl::{Ftl, FtlConfig, IndexBackend, IndexError};
use rhik_nand::{NandGeometry, Ppa};
use rhik_sigs::KeySignature;
use std::collections::HashMap;

fn mix(n: u64) -> u64 {
    let mut z = n.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn big_ftl() -> Ftl {
    Ftl::new(FtlConfig {
        geometry: NandGeometry {
            blocks: 1024,
            pages_per_block: 8,
            page_size: 512,
            spare_size: 16,
            channels: 2,
        },
        ..FtlConfig::tiny()
    })
}

#[derive(Clone, Debug)]
enum Op {
    Insert(u16, u8),
    Remove(u16),
    Lookup(u16),
    Flush,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u16>(), any::<u8>()).prop_map(|(k, p)| Op::Insert(k, p)),
        2 => any::<u16>().prop_map(Op::Remove),
        3 => any::<u16>().prop_map(Op::Lookup),
        1 => Just(Op::Flush),
    ]
}

/// Drive any index against the model; returns false if the index reported
/// a capacity limit (legitimate for the capped baselines).
fn check_against_model<I: IndexBackend>(mut idx: I, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut ftl = big_ftl();
    let mut model: HashMap<u64, Ppa> = HashMap::new();
    for op in ops {
        match op {
            Op::Insert(k, p) => {
                let sig = KeySignature(mix(*k as u64));
                let ppa = Ppa::new(*p as u32 % 512, *p as u32 % 8);
                match idx.insert(&mut ftl, sig, ppa) {
                    Ok(_) => {
                        model.insert(sig.0, ppa);
                    }
                    Err(IndexError::TableFull { .. }) | Err(IndexError::CapacityExhausted) => {}
                    Err(e) => return Err(TestCaseError::fail(format!("insert: {e}"))),
                }
            }
            Op::Remove(k) => {
                let sig = KeySignature(mix(*k as u64));
                let got =
                    idx.remove(&mut ftl, sig).map_err(|e| TestCaseError::fail(format!("{e}")))?;
                prop_assert_eq!(got, model.remove(&sig.0));
            }
            Op::Lookup(k) => {
                let sig = KeySignature(mix(*k as u64));
                let got =
                    idx.lookup(&mut ftl, sig).map_err(|e| TestCaseError::fail(format!("{e}")))?;
                prop_assert_eq!(got, model.get(&sig.0).copied());
            }
            Op::Flush => idx.flush(&mut ftl).map_err(|e| TestCaseError::fail(format!("{e}")))?,
        }
        prop_assert_eq!(idx.len(), model.len() as u64);
    }
    for (&raw, &ppa) in &model {
        let got = idx
            .lookup(&mut ftl, KeySignature(raw))
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        prop_assert_eq!(got, Some(ppa));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn multilevel_matches_hashmap(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        check_against_model(
            MultiLevelIndex::new(MultiLevelConfig { initial_bits: 1, max_levels: 8, hop_width: 16 }, 512),
            &ops,
        )?;
    }

    #[test]
    fn simple_hash_matches_hashmap(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        check_against_model(SimpleHashIndex::new(3, 16, 512), &ops)?;
    }

    #[test]
    fn lsm_matches_hashmap(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        check_against_model(
            LsmIndex::new(LsmConfig { memtable_records: 24, max_runs_per_level: 3, max_levels: 4 }),
            &ops,
        )?;
    }
}
