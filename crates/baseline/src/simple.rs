//! The NVMKV/KVFTL-style single-level fixed hash index (\[4\] in the paper).
//!
//! One hash table sized at initialization, never resized: fast and simple
//! while it fits, but with a hard key-count cap and — in NVMKV — an
//! index-induced limit on value sizes. RHIK's §IV-A5 explicitly removes
//! that coupling; this baseline keeps it for contrast.

use rhik_core::{RecordTable, TableInsert};
use rhik_ftl::layout::SpareMeta;
use rhik_ftl::{Ftl, IndexBackend, IndexError, IndexStats, InsertOutcome};
use rhik_nand::Ppa;
use rhik_sigs::KeySignature;

/// Fixed-capacity single-level hash index.
pub struct SimpleHashIndex {
    bits: u32,
    hop_width: u32,
    records_per_table: u32,
    tables: Vec<Option<Ppa>>,
    records: Vec<u32>,
    len: u64,
    stats: IndexStats,
}

impl SimpleHashIndex {
    /// `2^bits` page-sized tables; capacity is fixed forever.
    pub fn new(bits: u32, hop_width: u32, page_size: u32) -> Self {
        let records_per_table = page_size / rhik_core::IndexRecord::PACKED_LEN as u32;
        assert!(records_per_table >= hop_width, "page too small for hop width");
        SimpleHashIndex {
            bits,
            hop_width,
            records_per_table,
            tables: vec![None; 1 << bits],
            records: vec![0; 1 << bits],
            len: 0,
            stats: IndexStats::default(),
        }
    }

    fn slot_of(&self, sig: KeySignature) -> u32 {
        sig.low_bits(self.bits) as u32
    }

    fn cache_key(slot: u32) -> u64 {
        (1u64 << 50) | slot as u64
    }

    fn load_table(&mut self, ftl: &mut Ftl, slot: u32) -> Result<(RecordTable, u64), IndexError> {
        let key = Self::cache_key(slot);
        if let Some(bytes) = ftl.cache().get(key) {
            return Ok((RecordTable::from_page(&bytes, self.records_per_table, self.hop_width), 0));
        }
        match self.tables[slot as usize] {
            Some(ppa) => {
                let bytes = ftl.read_index_page(ppa)?;
                self.stats.metadata_flash_reads += 1;
                let t = RecordTable::from_page(&bytes, self.records_per_table, self.hop_width);
                self.install(ftl, key, bytes, false)?;
                Ok((t, 1))
            }
            None => Ok((RecordTable::new(self.records_per_table, self.hop_width), 0)),
        }
    }

    fn store_table(
        &mut self,
        ftl: &mut Ftl,
        slot: u32,
        table: &RecordTable,
    ) -> Result<(), IndexError> {
        self.records[slot as usize] = table.len();
        let page = table.to_page(ftl.geometry().page_size as usize);
        self.install(ftl, Self::cache_key(slot), page, true)
    }

    fn install(
        &mut self,
        ftl: &mut Ftl,
        key: u64,
        bytes: bytes::Bytes,
        dirty: bool,
    ) -> Result<(), IndexError> {
        let evicted = ftl.cache().insert(key, bytes, dirty);
        for ev in evicted {
            self.write_back(ftl, ev.key, ev.data, ev.dirty)?;
        }
        Ok(())
    }

    fn write_back(
        &mut self,
        ftl: &mut Ftl,
        key: u64,
        data: bytes::Bytes,
        dirty: bool,
    ) -> Result<(), IndexError> {
        if !dirty {
            return Ok(());
        }
        let slot = (key & 0xffff_ffff) as usize;
        if slot >= self.tables.len() {
            return Ok(());
        }
        let len = data.len() as u64;
        let new_ppa = ftl.write_index_page(data, SpareMeta::index_page())?;
        self.stats.metadata_flash_programs += 1;
        if let Some(old) = self.tables[slot].replace(new_ppa) {
            ftl.retire_index_page(old, len);
        }
        Ok(())
    }
}

impl IndexBackend for SimpleHashIndex {
    fn insert(
        &mut self,
        ftl: &mut Ftl,
        sig: KeySignature,
        ppa: Ppa,
    ) -> Result<InsertOutcome, IndexError> {
        self.stats.inserts += 1;
        let slot = self.slot_of(sig);
        let (mut table, _) = self.load_table(ftl, slot)?;
        match table.insert(sig, ppa) {
            TableInsert::Inserted => {
                self.store_table(ftl, slot, &table)?;
                self.len += 1;
                Ok(InsertOutcome::Inserted)
            }
            TableInsert::Updated { old } => {
                self.store_table(ftl, slot, &table)?;
                Ok(InsertOutcome::Updated { old })
            }
            TableInsert::Full => {
                self.stats.insert_aborts += 1;
                Err(IndexError::CapacityExhausted)
            }
        }
    }

    fn lookup(&mut self, ftl: &mut Ftl, sig: KeySignature) -> Result<Option<Ppa>, IndexError> {
        self.stats.lookups += 1;
        let slot = self.slot_of(sig);
        let (table, reads) = self.load_table(ftl, slot)?;
        self.stats.note_lookup_reads(reads);
        Ok(table.lookup(sig))
    }

    fn remove(&mut self, ftl: &mut Ftl, sig: KeySignature) -> Result<Option<Ppa>, IndexError> {
        self.stats.removes += 1;
        let slot = self.slot_of(sig);
        let (mut table, _) = self.load_table(ftl, slot)?;
        let removed = table.remove(sig);
        if removed.is_some() {
            self.store_table(ftl, slot, &table)?;
            self.len -= 1;
        }
        Ok(removed)
    }

    fn len(&self) -> u64 {
        self.len
    }

    fn capacity(&self) -> Option<u64> {
        Some(self.tables.len() as u64 * self.records_per_table as u64)
    }

    fn dram_bytes(&self) -> u64 {
        (self.tables.len() * (std::mem::size_of::<Option<Ppa>>() + 4)) as u64
    }

    fn stats(&self) -> &IndexStats {
        &self.stats
    }

    fn name(&self) -> &'static str {
        "simple-hash"
    }

    fn flush(&mut self, ftl: &mut Ftl) -> Result<(), IndexError> {
        let dirty = ftl.cache().drain_dirty();
        for ev in dirty {
            self.write_back(ftl, ev.key, ev.data, true)?;
        }
        Ok(())
    }

    fn scan_records(
        &mut self,
        ftl: &mut Ftl,
        visit: &mut dyn FnMut(KeySignature, Ppa),
    ) -> Result<(), IndexError> {
        for slot in 0..self.tables.len() as u32 {
            if self.records[slot as usize] == 0 {
                continue;
            }
            let (table, _) = self.load_table(ftl, slot)?;
            for (sig, ppa) in table.iter() {
                visit(sig, ppa);
            }
        }
        Ok(())
    }

    fn live_index_pages_in(&self, block: u32) -> Vec<(u64, Ppa)> {
        self.tables
            .iter()
            .enumerate()
            .filter_map(|(s, t)| {
                t.filter(|p| p.block == block).map(|p| (Self::cache_key(s as u32), p))
            })
            .collect()
    }

    fn relocate_index_page(
        &mut self,
        ftl: &mut Ftl,
        key: u64,
        old: Ppa,
    ) -> Result<Option<Ppa>, IndexError> {
        let slot = (key & 0xffff_ffff) as usize;
        if slot >= self.tables.len() || self.tables[slot] != Some(old) {
            return Ok(None);
        }
        let bytes = ftl.read_index_page(old)?;
        self.stats.metadata_flash_reads += 1;
        let len = bytes.len() as u64;
        let new_ppa = ftl.write_index_page(bytes, SpareMeta::index_page())?;
        self.stats.metadata_flash_programs += 1;
        self.tables[slot] = Some(new_ppa);
        ftl.retire_index_page(old, len);
        Ok(Some(new_ppa))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhik_ftl::FtlConfig;
    use rhik_nand::NandGeometry;

    fn mix(n: u64) -> KeySignature {
        let mut z = n.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        KeySignature(z ^ (z >> 31))
    }

    fn setup() -> (Ftl, SimpleHashIndex) {
        let ftl = Ftl::new(FtlConfig {
            geometry: NandGeometry {
                blocks: 128,
                pages_per_block: 8,
                page_size: 512,
                spare_size: 16,
                channels: 2,
            },
            ..FtlConfig::tiny()
        });
        (ftl, SimpleHashIndex::new(2, 16, 512))
    }

    #[test]
    fn crud_cycle() {
        let (mut ftl, mut idx) = setup();
        idx.insert(&mut ftl, mix(1), Ppa::new(1, 1)).unwrap();
        assert_eq!(idx.lookup(&mut ftl, mix(1)).unwrap(), Some(Ppa::new(1, 1)));
        assert_eq!(
            idx.insert(&mut ftl, mix(1), Ppa::new(2, 2)).unwrap(),
            InsertOutcome::Updated { old: Ppa::new(1, 1) }
        );
        assert_eq!(idx.remove(&mut ftl, mix(1)).unwrap(), Some(Ppa::new(2, 2)));
        assert!(idx.is_empty());
    }

    #[test]
    fn hard_capacity_cap() {
        let (mut ftl, mut idx) = setup(); // 4 tables × 30 = 120 records max
        let mut stored = 0u64;
        let mut capped = false;
        for i in 0..500u64 {
            match idx.insert(&mut ftl, mix(i), Ppa::new(0, 0)) {
                Ok(_) => stored += 1,
                Err(IndexError::CapacityExhausted) => {
                    capped = true;
                    break;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(capped, "never capped; stored {stored}");
        assert!(stored <= idx.capacity().unwrap());
        assert!(
            stored as f64 >= idx.capacity().unwrap() as f64 * 0.5,
            "cap hit too early: {stored}"
        );
        // Existing keys remain intact after the failure.
        for i in 0..stored / 2 {
            assert!(idx.lookup(&mut ftl, mix(i)).unwrap().is_some());
        }
    }

    #[test]
    fn one_read_per_lookup_like_rhik() {
        // Single level ⇒ also ≤1 flash read per lookup; its problem is
        // capacity, not reads.
        let (mut ftl, mut idx) = setup();
        for i in 0..100u64 {
            idx.insert(&mut ftl, mix(i), Ppa::new(0, 0)).unwrap();
        }
        idx.flush(&mut ftl).unwrap();
        for i in 0..100u64 {
            idx.lookup(&mut ftl, mix(i)).unwrap();
        }
        assert!(idx.stats().pct_lookups_within(1) > 100.0 - 1e-9);
    }
}
