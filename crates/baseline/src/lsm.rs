//! A PinK-style LSM index (\[5\], \[16\] in the paper).
//!
//! Memtable + tiered sorted runs on flash. Each run keeps its per-page
//! *fence pointers* (first signature of every page) pinned in DRAM — the
//! PinK optimization of pinning upper-level metadata — so a point lookup
//! costs at most one flash read per probed run. The paper's critique
//! stands regardless: with several runs live, a lookup may probe several
//! of them ("an LSM-tree-based index still requires a higher amount of
//! binary search operations during metadata lookups, since we don't know
//! for sure which SSTable file contains the corresponding record", §II-B).

use std::collections::BTreeMap;

use bytes::Bytes;
use rhik_ftl::layout::SpareMeta;
use rhik_ftl::{Ftl, IndexBackend, IndexError, IndexStats, InsertOutcome};
use rhik_nand::Ppa;
use rhik_sigs::KeySignature;

/// 8-byte signature + 5-byte PPA per sorted-run record.
const RUN_RECORD_LEN: usize = 13;
/// Tombstone marker in the PPA field.
const TOMBSTONE: u64 = (1 << 40) - 1;

/// LSM tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct LsmConfig {
    /// Memtable flush threshold, in records.
    pub memtable_records: usize,
    /// Runs allowed per level before compaction into the next level.
    pub max_runs_per_level: usize,
    /// Levels allowed before compaction stops growing the tree deeper
    /// (the last level absorbs everything).
    pub max_levels: usize,
}

impl Default for LsmConfig {
    fn default() -> Self {
        LsmConfig { memtable_records: 512, max_runs_per_level: 4, max_levels: 6 }
    }
}

/// One immutable sorted run.
struct Run {
    pages: Vec<Ppa>,
    /// First signature of each page (DRAM-pinned fence pointers).
    fences: Vec<u64>,
    records: u64,
}

impl Run {
    /// Page index that may contain `sig`, by fence binary search.
    fn page_for(&self, sig: u64) -> Option<usize> {
        if self.fences.is_empty() || sig < self.fences[0] {
            return None;
        }
        Some(match self.fences.binary_search(&sig) {
            Ok(i) => i,
            Err(i) => i - 1,
        })
    }
}

/// Encode a sorted slice of `(sig, ppa_raw)` into page images.
fn encode_run(records: &[(u64, u64)], page_size: usize) -> Vec<(Bytes, u64)> {
    // The last 2 bytes of the page hold the record count, so records may
    // only occupy page_size - 2 bytes.
    let per_page = (page_size - 2) / RUN_RECORD_LEN;
    let mut pages = Vec::new();
    for chunk in records.chunks(per_page) {
        let mut buf = vec![0u8; page_size];
        for (i, &(sig, ppa)) in chunk.iter().enumerate() {
            let off = i * RUN_RECORD_LEN;
            buf[off..off + 8].copy_from_slice(&sig.to_le_bytes());
            buf[off + 8..off + 13].copy_from_slice(&ppa.to_le_bytes()[..5]);
        }
        let count_off = page_size - 2;
        buf[count_off..].copy_from_slice(&(chunk.len() as u16).to_le_bytes());
        pages.push((Bytes::from(buf), chunk[0].0));
    }
    pages
}

/// Decode a run page into `(sig, ppa_raw)` records.
fn decode_run_page(data: &[u8]) -> Vec<(u64, u64)> {
    if data.len() < 2 {
        return Vec::new();
    }
    let count = u16::from_le_bytes(data[data.len() - 2..].try_into().expect("2 bytes")) as usize;
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let off = i * RUN_RECORD_LEN;
        if off + RUN_RECORD_LEN > data.len() - 2 {
            break;
        }
        let sig = u64::from_le_bytes(data[off..off + 8].try_into().expect("8 bytes"));
        let mut raw = [0u8; 8];
        raw[..5].copy_from_slice(&data[off + 8..off + 13]);
        out.push((sig, u64::from_le_bytes(raw)));
    }
    out
}

/// The LSM index.
pub struct LsmIndex {
    cfg: LsmConfig,
    /// `None` value = tombstone.
    memtable: BTreeMap<u64, Option<Ppa>>,
    levels: Vec<Vec<Run>>,
    len: u64,
    stats: IndexStats,
    compactions: u64,
}

impl LsmIndex {
    pub fn new(cfg: LsmConfig) -> Self {
        assert!(cfg.memtable_records > 0 && cfg.max_runs_per_level > 0 && cfg.max_levels > 0);
        LsmIndex {
            cfg,
            memtable: BTreeMap::new(),
            levels: Vec::new(),
            len: 0,
            stats: IndexStats::default(),
            compactions: 0,
        }
    }

    /// Completed compactions (diagnostics).
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Runs currently live across all levels.
    pub fn run_count(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Records across all on-flash runs (duplicates included — compaction
    /// debt).
    pub fn run_records(&self) -> u64 {
        self.levels.iter().flatten().map(|r| r.records).sum()
    }

    fn cache_key(ppa: Ppa) -> u64 {
        (1u64 << 52) | ppa.pack()
    }

    /// Read a run page through the cache; returns (records, flash reads).
    fn read_run_page(
        &mut self,
        ftl: &mut Ftl,
        ppa: Ppa,
    ) -> Result<(Vec<(u64, u64)>, u64), IndexError> {
        let key = Self::cache_key(ppa);
        if let Some(bytes) = ftl.cache().get(key) {
            return Ok((decode_run_page(&bytes), 0));
        }
        let bytes = ftl.read_index_page(ppa)?;
        self.stats.metadata_flash_reads += 1;
        let records = decode_run_page(&bytes);
        // Run pages are immutable: inserting clean, evictions need no
        // write-back.
        let _ = ftl.cache().insert(key, bytes, false);
        Ok((records, 1))
    }

    /// Probe a single run for `sig`.
    fn probe_run(
        &mut self,
        ftl: &mut Ftl,
        level: usize,
        run: usize,
        sig: u64,
    ) -> Result<(Option<Option<Ppa>>, u64), IndexError> {
        let Some(page_idx) = self.levels[level][run].page_for(sig) else {
            return Ok((None, 0));
        };
        let ppa = self.levels[level][run].pages[page_idx];
        let (records, reads) = self.read_run_page(ftl, ppa)?;
        match records.binary_search_by_key(&sig, |r| r.0) {
            Ok(i) => {
                let raw = records[i].1;
                if raw == TOMBSTONE {
                    Ok((Some(None), reads))
                } else {
                    Ok((Some(Some(Ppa::unpack(raw))), reads))
                }
            }
            Err(_) => Ok((None, reads)),
        }
    }

    /// Full point query: memtable then runs newest-to-oldest. Returns
    /// `(outcome, flash reads)`; `Some(None)` means tombstoned.
    fn query(&mut self, ftl: &mut Ftl, sig: u64) -> Result<(Option<Option<Ppa>>, u64), IndexError> {
        if let Some(v) = self.memtable.get(&sig) {
            return Ok((Some(*v), 0));
        }
        let mut reads = 0;
        for level in 0..self.levels.len() {
            for run in (0..self.levels[level].len()).rev() {
                let (hit, r) = self.probe_run(ftl, level, run, sig)?;
                reads += r;
                if hit.is_some() {
                    return Ok((hit, reads));
                }
            }
        }
        Ok((None, reads))
    }

    /// Flush the memtable into a fresh level-0 run.
    fn flush_memtable(&mut self, ftl: &mut Ftl) -> Result<(), IndexError> {
        if self.memtable.is_empty() {
            return Ok(());
        }
        let records: Vec<(u64, u64)> =
            self.memtable.iter().map(|(&sig, v)| (sig, v.map_or(TOMBSTONE, Ppa::pack))).collect();
        self.memtable.clear();
        let run = self.write_run(ftl, &records)?;
        if self.levels.is_empty() {
            self.levels.push(Vec::new());
        }
        self.levels[0].push(run);
        self.maybe_compact(ftl)
    }

    fn write_run(&mut self, ftl: &mut Ftl, records: &[(u64, u64)]) -> Result<Run, IndexError> {
        let page_size = ftl.geometry().page_size as usize;
        let mut pages = Vec::new();
        let mut fences = Vec::new();
        for (bytes, first_sig) in encode_run(records, page_size) {
            let ppa = ftl.write_index_page(bytes, SpareMeta::index_page())?;
            self.stats.metadata_flash_programs += 1;
            pages.push(ppa);
            fences.push(first_sig);
        }
        Ok(Run { pages, fences, records: records.len() as u64 })
    }

    fn retire_run(&mut self, ftl: &mut Ftl, run: &Run) {
        let page_size = ftl.geometry().page_size as u64;
        for &ppa in &run.pages {
            ftl.cache().remove(Self::cache_key(ppa));
            ftl.retire_index_page(ppa, page_size);
        }
    }

    /// Tiered compaction: when a level exceeds its run budget, merge all of
    /// its runs into one run in the next level.
    fn maybe_compact(&mut self, ftl: &mut Ftl) -> Result<(), IndexError> {
        for level in 0..self.levels.len() {
            if self.levels[level].len() <= self.cfg.max_runs_per_level {
                continue;
            }
            self.compactions += 1;
            let runs = std::mem::take(&mut self.levels[level]);
            // Newest-first merge: for duplicate signatures the newest run
            // (highest index) wins.
            let mut merged: BTreeMap<u64, u64> = BTreeMap::new();
            for run in &runs {
                // Older runs first, newer overwrite.
                for &ppa in &run.pages {
                    let (records, _) = self.read_run_page(ftl, ppa)?;
                    let _ = records.len();
                    for (sig, raw) in records {
                        merged.insert(sig, raw);
                    }
                }
            }
            for run in &runs {
                self.retire_run(ftl, run);
            }
            let is_last = level + 1 >= self.cfg.max_levels;
            let records: Vec<(u64, u64)> =
                merged.into_iter().filter(|&(_, raw)| !(is_last && raw == TOMBSTONE)).collect();
            if self.levels.len() <= level + 1 {
                self.levels.push(Vec::new());
            }
            if !records.is_empty() {
                let run = self.write_run(ftl, &records)?;
                let target = (level + 1).min(self.cfg.max_levels - 1);
                self.levels[target].push(run);
            }
        }
        Ok(())
    }
}

impl IndexBackend for LsmIndex {
    fn insert(
        &mut self,
        ftl: &mut Ftl,
        sig: KeySignature,
        ppa: Ppa,
    ) -> Result<InsertOutcome, IndexError> {
        self.stats.inserts += 1;
        // LSM must query to distinguish insert from update (the binary
        // search overhead §II-B complains about).
        let (prev, _) = self.query(ftl, sig.0)?;
        self.memtable.insert(sig.0, Some(ppa));
        if self.memtable.len() >= self.cfg.memtable_records {
            self.flush_memtable(ftl)?;
        }
        match prev {
            Some(Some(old)) => Ok(InsertOutcome::Updated { old }),
            _ => {
                self.len += 1;
                Ok(InsertOutcome::Inserted)
            }
        }
    }

    fn lookup(&mut self, ftl: &mut Ftl, sig: KeySignature) -> Result<Option<Ppa>, IndexError> {
        self.stats.lookups += 1;
        let (hit, reads) = self.query(ftl, sig.0)?;
        self.stats.note_lookup_reads(reads);
        Ok(hit.flatten())
    }

    fn remove(&mut self, ftl: &mut Ftl, sig: KeySignature) -> Result<Option<Ppa>, IndexError> {
        self.stats.removes += 1;
        let (prev, _) = self.query(ftl, sig.0)?;
        match prev {
            Some(Some(old)) => {
                self.memtable.insert(sig.0, None);
                self.len -= 1;
                if self.memtable.len() >= self.cfg.memtable_records {
                    self.flush_memtable(ftl)?;
                }
                Ok(Some(old))
            }
            _ => Ok(None),
        }
    }

    fn len(&self) -> u64 {
        self.len
    }

    fn capacity(&self) -> Option<u64> {
        None // grows as long as flash lasts
    }

    fn dram_bytes(&self) -> u64 {
        let memtable = self.memtable.len() as u64 * 24;
        let fences: u64 = self
            .levels
            .iter()
            .flatten()
            .map(|r| (r.fences.len() * 8 + r.pages.len() * 8) as u64)
            .sum();
        memtable + fences
    }

    fn stats(&self) -> &IndexStats {
        &self.stats
    }

    fn name(&self) -> &'static str {
        "lsm"
    }

    fn flush(&mut self, ftl: &mut Ftl) -> Result<(), IndexError> {
        self.flush_memtable(ftl)
    }

    fn scan_records(
        &mut self,
        ftl: &mut Ftl,
        visit: &mut dyn FnMut(KeySignature, Ppa),
    ) -> Result<(), IndexError> {
        // Newest-wins semantics: collect into a map, oldest runs first,
        // memtable last; tombstones suppress.
        let mut merged: BTreeMap<u64, Option<Ppa>> = BTreeMap::new();
        for level in (0..self.levels.len()).rev() {
            for run in 0..self.levels[level].len() {
                let pages = self.levels[level][run].pages.clone();
                for ppa in pages {
                    let (records, _) = self.read_run_page(ftl, ppa)?;
                    for (sig, raw) in records {
                        let v = if raw == TOMBSTONE { None } else { Some(Ppa::unpack(raw)) };
                        merged.insert(sig, v);
                    }
                }
            }
        }
        for (&sig, &v) in &self.memtable {
            merged.insert(sig, v);
        }
        for (sig, v) in merged {
            if let Some(ppa) = v {
                visit(KeySignature(sig), ppa);
            }
        }
        Ok(())
    }

    fn live_index_pages_in(&self, block: u32) -> Vec<(u64, Ppa)> {
        self.levels
            .iter()
            .flatten()
            .flat_map(|r| r.pages.iter())
            .filter(|p| p.block == block)
            .map(|&p| (Self::cache_key(p), p))
            .collect()
    }

    fn relocate_index_page(
        &mut self,
        ftl: &mut Ftl,
        key: u64,
        old: Ppa,
    ) -> Result<Option<Ppa>, IndexError> {
        if key != Self::cache_key(old) {
            return Ok(None);
        }
        // Find the run holding this page.
        let mut loc = None;
        'outer: for (li, level) in self.levels.iter().enumerate() {
            for (ri, run) in level.iter().enumerate() {
                if let Some(pi) = run.pages.iter().position(|&p| p == old) {
                    loc = Some((li, ri, pi));
                    break 'outer;
                }
            }
        }
        let Some((li, ri, pi)) = loc else { return Ok(None) };
        let bytes = ftl.read_index_page(old)?;
        self.stats.metadata_flash_reads += 1;
        let len = bytes.len() as u64;
        let new_ppa = ftl.write_index_page(bytes, SpareMeta::index_page())?;
        self.stats.metadata_flash_programs += 1;
        self.levels[li][ri].pages[pi] = new_ppa;
        ftl.cache().remove(Self::cache_key(old));
        ftl.retire_index_page(old, len);
        Ok(Some(new_ppa))
    }
}

impl std::fmt::Debug for LsmIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LsmIndex")
            .field("keys", &self.len)
            .field("memtable", &self.memtable.len())
            .field("levels", &self.levels.len())
            .field("runs", &self.run_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhik_ftl::FtlConfig;
    use rhik_nand::NandGeometry;

    fn mix(n: u64) -> KeySignature {
        let mut z = n.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        KeySignature(z ^ (z >> 31))
    }

    fn setup() -> (Ftl, LsmIndex) {
        let ftl = Ftl::new(FtlConfig {
            geometry: NandGeometry {
                blocks: 512,
                pages_per_block: 8,
                page_size: 512,
                spare_size: 16,
                channels: 2,
            },
            ..FtlConfig::tiny()
        });
        let idx =
            LsmIndex::new(LsmConfig { memtable_records: 32, max_runs_per_level: 3, max_levels: 4 });
        (ftl, idx)
    }

    #[test]
    fn run_codec_roundtrip() {
        // 4096-byte pages hit the count-trailer boundary ((4096-2)/13 = 314
        // records exactly); regression for the trailer overlapping the last
        // record.
        for page_size in [512usize, 4096] {
            let records: Vec<(u64, u64)> = (0..800u64).map(|i| (i * 3, i)).collect();
            let pages = encode_run(&records, page_size);
            assert!(pages.len() > 1);
            let mut back = Vec::new();
            for (bytes, first) in &pages {
                let recs = decode_run_page(bytes);
                assert_eq!(recs[0].0, *first);
                back.extend(recs);
            }
            assert_eq!(back, records, "page_size {page_size}");
        }
    }

    #[test]
    fn crud_through_flushes_and_compactions() {
        let (mut ftl, mut idx) = setup();
        for i in 0..500u64 {
            idx.insert(&mut ftl, mix(i), Ppa::new((i % 100) as u32, (i % 8) as u32)).unwrap();
        }
        assert_eq!(idx.len(), 500);
        assert!(idx.compactions() > 0, "compaction never ran");
        for i in 0..500u64 {
            assert_eq!(
                idx.lookup(&mut ftl, mix(i)).unwrap(),
                Some(Ppa::new((i % 100) as u32, (i % 8) as u32)),
                "key {i}"
            );
        }
        assert_eq!(idx.lookup(&mut ftl, mix(10_000)).unwrap(), None);
    }

    #[test]
    fn updates_and_tombstones_win_over_old_runs() {
        let (mut ftl, mut idx) = setup();
        for i in 0..100u64 {
            idx.insert(&mut ftl, mix(i), Ppa::new(1, 1)).unwrap();
        }
        // Update half, remove a quarter — forcing multiple runs.
        for i in 0..50u64 {
            assert_eq!(
                idx.insert(&mut ftl, mix(i), Ppa::new(2, 2)).unwrap(),
                InsertOutcome::Updated { old: Ppa::new(1, 1) }
            );
        }
        for i in 50..75u64 {
            assert_eq!(idx.remove(&mut ftl, mix(i)).unwrap(), Some(Ppa::new(1, 1)));
        }
        idx.flush(&mut ftl).unwrap();
        assert_eq!(idx.len(), 75);
        for i in 0..50u64 {
            assert_eq!(idx.lookup(&mut ftl, mix(i)).unwrap(), Some(Ppa::new(2, 2)));
        }
        for i in 50..75u64 {
            assert_eq!(idx.lookup(&mut ftl, mix(i)).unwrap(), None, "tombstone leaked {i}");
        }
        for i in 75..100u64 {
            assert_eq!(idx.lookup(&mut ftl, mix(i)).unwrap(), Some(Ppa::new(1, 1)));
        }
    }

    #[test]
    fn multi_run_lookups_cost_multiple_reads() {
        let (mut ftl, mut idx) = setup();
        for i in 0..400u64 {
            idx.insert(&mut ftl, mix(i), Ppa::new(0, 0)).unwrap();
        }
        idx.flush(&mut ftl).unwrap();
        assert!(idx.run_count() >= 2, "runs: {}", idx.run_count());
        // Cold-cache misses walk several runs.
        let before = idx.stats().clone();
        for i in 400..600u64 {
            idx.lookup(&mut ftl, mix(i)).unwrap();
        }
        let after = idx.stats();
        let reads = after.metadata_flash_reads - before.metadata_flash_reads;
        assert!(reads > 0, "misses must probe runs");
    }

    #[test]
    fn relocation_keeps_runs_readable() {
        let (mut ftl, mut idx) = setup();
        for i in 0..200u64 {
            idx.insert(&mut ftl, mix(i), Ppa::new(3, 3)).unwrap();
        }
        idx.flush(&mut ftl).unwrap();
        let mut moved = 0;
        for b in 0..ftl.geometry().blocks {
            for (key, old) in idx.live_index_pages_in(b) {
                if idx.relocate_index_page(&mut ftl, key, old).unwrap().is_some() {
                    moved += 1;
                }
                if moved >= 2 {
                    break;
                }
            }
            if moved >= 2 {
                break;
            }
        }
        assert!(moved >= 1);
        for i in 0..200u64 {
            assert!(idx.lookup(&mut ftl, mix(i)).unwrap().is_some(), "key {i} lost");
        }
    }

    #[test]
    fn dram_bytes_accounts_fences() {
        let (mut ftl, mut idx) = setup();
        let before = idx.dram_bytes();
        for i in 0..200u64 {
            idx.insert(&mut ftl, mix(i), Ppa::new(0, 0)).unwrap();
        }
        idx.flush(&mut ftl).unwrap();
        assert!(idx.dram_bytes() > before);
    }
}
