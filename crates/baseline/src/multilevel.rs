//! The Samsung-style multi-level hash index.
//!
//! "Samsung KVSSD uses a multi-level hash table as the primary index" \[7\].
//! Our model grows by *appending levels*: when an insert cannot find room
//! in any existing level, a new level with twice the previous level's table
//! count is appended — the growth points visible as vertical lines in
//! Fig. 2. Lookups probe levels newest-capacity-last in insertion order,
//! paying up to one flash read per probed level; this is exactly the
//! behaviour RHIK's ≤ 1-read design eliminates.

use rhik_core::{RecordTable, TableInsert};
use rhik_ftl::layout::SpareMeta;
use rhik_ftl::{Ftl, IndexBackend, IndexError, IndexStats, InsertOutcome};
use rhik_nand::Ppa;
use rhik_sigs::KeySignature;

/// Configuration of the multi-level baseline.
#[derive(Clone, Copy, Debug)]
pub struct MultiLevelConfig {
    /// Table count of level 0 is `2^initial_bits`.
    pub initial_bits: u32,
    /// Hard cap on levels; inserting past it fails with
    /// [`IndexError::CapacityExhausted`] — the bounded-key-count behaviour
    /// observed on the real device (§III: ~3.1 B keys on a 3.84 TB PM983).
    pub max_levels: u32,
    /// Hopscotch hop width within each table.
    pub hop_width: u32,
}

impl Default for MultiLevelConfig {
    fn default() -> Self {
        MultiLevelConfig { initial_bits: 2, max_levels: 8, hop_width: 32 }
    }
}

struct Level {
    bits: u32,
    /// Per-table flash location (None = empty, never persisted).
    tables: Vec<Option<Ppa>>,
    /// Per-table record count (DRAM bookkeeping).
    records: Vec<u32>,
}

impl Level {
    fn new(bits: u32) -> Self {
        Level { bits, tables: vec![None; 1 << bits], records: vec![0; 1 << bits] }
    }

    fn slot_of(&self, sig: KeySignature) -> u32 {
        sig.low_bits(self.bits) as u32
    }
}

/// Samsung-KVSSD-style multi-level hash index.
pub struct MultiLevelIndex {
    cfg: MultiLevelConfig,
    levels: Vec<Level>,
    records_per_table: u32,
    len: u64,
    stats: IndexStats,
    /// Keys appended when each level was added (for Fig. 2's growth lines).
    growth_points: Vec<u64>,
}

impl MultiLevelIndex {
    pub fn new(cfg: MultiLevelConfig, page_size: u32) -> Self {
        assert!(cfg.max_levels >= 1);
        let records_per_table = page_size / rhik_core::IndexRecord::PACKED_LEN as u32;
        assert!(records_per_table >= cfg.hop_width, "page too small for hop width");
        MultiLevelIndex {
            levels: vec![Level::new(cfg.initial_bits)],
            cfg,
            records_per_table,
            len: 0,
            stats: IndexStats::default(),
            growth_points: Vec::new(),
        }
    }

    /// Number of levels currently in use.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Key counts at which new levels were appended (Fig. 2's vertical
    /// lines).
    pub fn growth_points(&self) -> &[u64] {
        &self.growth_points
    }

    /// Cache key for (level, slot): levels live in the same shared cache
    /// as everything else.
    fn cache_key(level: usize, slot: u32) -> u64 {
        ((level as u64 + 1) << 40) | slot as u64
    }

    /// Load the table at (level, slot); returns (table, flash reads).
    fn load_table(
        &mut self,
        ftl: &mut Ftl,
        level: usize,
        slot: u32,
    ) -> Result<(RecordTable, u64), IndexError> {
        let key = Self::cache_key(level, slot);
        if let Some(bytes) = ftl.cache().get(key) {
            return Ok((
                RecordTable::from_page(&bytes, self.records_per_table, self.cfg.hop_width),
                0,
            ));
        }
        match self.levels[level].tables[slot as usize] {
            Some(ppa) => {
                let bytes = ftl.read_index_page(ppa)?;
                self.stats.metadata_flash_reads += 1;
                let table =
                    RecordTable::from_page(&bytes, self.records_per_table, self.cfg.hop_width);
                self.install(ftl, key, bytes, false)?;
                Ok((table, 1))
            }
            None => Ok((RecordTable::new(self.records_per_table, self.cfg.hop_width), 0)),
        }
    }

    fn store_table(
        &mut self,
        ftl: &mut Ftl,
        level: usize,
        slot: u32,
        table: &RecordTable,
    ) -> Result<(), IndexError> {
        let key = Self::cache_key(level, slot);
        let page = table.to_page(ftl.geometry().page_size as usize);
        self.levels[level].records[slot as usize] = table.len();
        self.install(ftl, key, page, true)
    }

    fn install(
        &mut self,
        ftl: &mut Ftl,
        key: u64,
        bytes: bytes::Bytes,
        dirty: bool,
    ) -> Result<(), IndexError> {
        let evicted = ftl.cache().insert(key, bytes, dirty);
        for ev in evicted {
            self.write_back(ftl, ev.key, ev.data, ev.dirty)?;
        }
        Ok(())
    }

    fn write_back(
        &mut self,
        ftl: &mut Ftl,
        key: u64,
        data: bytes::Bytes,
        dirty: bool,
    ) -> Result<(), IndexError> {
        if !dirty {
            return Ok(());
        }
        let level = ((key >> 40) - 1) as usize;
        let slot = (key & 0xff_ffff_ffff) as usize;
        if level >= self.levels.len() || slot >= self.levels[level].tables.len() {
            return Ok(());
        }
        let bytes_len = data.len() as u64;
        let new_ppa = ftl.write_index_page(data, SpareMeta::index_page())?;
        self.stats.metadata_flash_programs += 1;
        if let Some(old) = self.levels[level].tables[slot].replace(new_ppa) {
            ftl.retire_index_page(old, bytes_len);
        }
        Ok(())
    }
}

impl IndexBackend for MultiLevelIndex {
    fn insert(
        &mut self,
        ftl: &mut Ftl,
        sig: KeySignature,
        ppa: Ppa,
    ) -> Result<InsertOutcome, IndexError> {
        self.stats.inserts += 1;

        // Pass 1: if the signature exists in any level, update in place.
        for level in 0..self.levels.len() {
            let slot = self.levels[level].slot_of(sig);
            if self.levels[level].records[slot as usize] == 0 {
                continue;
            }
            let (mut table, _) = self.load_table(ftl, level, slot)?;
            if table.lookup(sig).is_some() {
                let TableInsert::Updated { old } = table.insert(sig, ppa) else {
                    unreachable!("lookup said present");
                };
                self.store_table(ftl, level, slot, &table)?;
                return Ok(InsertOutcome::Updated { old });
            }
        }

        // Pass 2: first level with room wins.
        loop {
            for level in 0..self.levels.len() {
                let slot = self.levels[level].slot_of(sig);
                if self.levels[level].records[slot as usize] >= self.records_per_table {
                    continue;
                }
                let (mut table, _) = self.load_table(ftl, level, slot)?;
                match table.insert(sig, ppa) {
                    TableInsert::Inserted => {
                        self.store_table(ftl, level, slot, &table)?;
                        self.len += 1;
                        return Ok(InsertOutcome::Inserted);
                    }
                    TableInsert::Updated { .. } => unreachable!("pass 1 checked"),
                    TableInsert::Full => continue, // hop-range full, try next level
                }
            }
            // No level had room: append one (the Fig. 2 growth cliff).
            if self.levels.len() as u32 >= self.cfg.max_levels {
                self.stats.insert_aborts += 1;
                return Err(IndexError::CapacityExhausted);
            }
            let next_bits = self.levels.last().expect("nonempty").bits + 1;
            self.levels.push(Level::new(next_bits));
            self.growth_points.push(self.len);
        }
    }

    fn lookup(&mut self, ftl: &mut Ftl, sig: KeySignature) -> Result<Option<Ppa>, IndexError> {
        self.stats.lookups += 1;
        let mut reads = 0;
        let mut found = None;
        for level in 0..self.levels.len() {
            let slot = self.levels[level].slot_of(sig);
            if self.levels[level].records[slot as usize] == 0 {
                continue;
            }
            let (table, r) = self.load_table(ftl, level, slot)?;
            reads += r;
            if let Some(ppa) = table.lookup(sig) {
                found = Some(ppa);
                break;
            }
        }
        self.stats.note_lookup_reads(reads);
        Ok(found)
    }

    fn remove(&mut self, ftl: &mut Ftl, sig: KeySignature) -> Result<Option<Ppa>, IndexError> {
        self.stats.removes += 1;
        for level in 0..self.levels.len() {
            let slot = self.levels[level].slot_of(sig);
            if self.levels[level].records[slot as usize] == 0 {
                continue;
            }
            let (mut table, _) = self.load_table(ftl, level, slot)?;
            if let Some(ppa) = table.remove(sig) {
                self.store_table(ftl, level, slot, &table)?;
                self.len -= 1;
                return Ok(Some(ppa));
            }
        }
        Ok(None)
    }

    fn len(&self) -> u64 {
        self.len
    }

    fn capacity(&self) -> Option<u64> {
        // Capacity if all permitted levels were materialized.
        let cap = (0..self.cfg.max_levels)
            .map(|l| (1u64 << (self.cfg.initial_bits + l)) * self.records_per_table as u64)
            .sum();
        Some(cap)
    }

    fn dram_bytes(&self) -> u64 {
        self.levels
            .iter()
            .map(|l| (l.tables.len() * (std::mem::size_of::<Option<Ppa>>() + 4)) as u64)
            .sum()
    }

    fn stats(&self) -> &IndexStats {
        &self.stats
    }

    fn name(&self) -> &'static str {
        "multilevel"
    }

    fn flush(&mut self, ftl: &mut Ftl) -> Result<(), IndexError> {
        let dirty = ftl.cache().drain_dirty();
        for ev in dirty {
            self.write_back(ftl, ev.key, ev.data, true)?;
        }
        Ok(())
    }

    fn scan_records(
        &mut self,
        ftl: &mut Ftl,
        visit: &mut dyn FnMut(KeySignature, Ppa),
    ) -> Result<(), IndexError> {
        for level in 0..self.levels.len() {
            for slot in 0..self.levels[level].tables.len() as u32 {
                if self.levels[level].records[slot as usize] == 0 {
                    continue;
                }
                let (table, _) = self.load_table(ftl, level, slot)?;
                for (sig, ppa) in table.iter() {
                    visit(sig, ppa);
                }
            }
        }
        Ok(())
    }

    fn live_index_pages_in(&self, block: u32) -> Vec<(u64, Ppa)> {
        let mut out = Vec::new();
        for (li, level) in self.levels.iter().enumerate() {
            for (si, slot) in level.tables.iter().enumerate() {
                if let Some(ppa) = slot {
                    if ppa.block == block {
                        out.push((Self::cache_key(li, si as u32), *ppa));
                    }
                }
            }
        }
        out
    }

    fn relocate_index_page(
        &mut self,
        ftl: &mut Ftl,
        key: u64,
        old: Ppa,
    ) -> Result<Option<Ppa>, IndexError> {
        let level = ((key >> 40) - 1) as usize;
        let slot = (key & 0xff_ffff_ffff) as usize;
        if level >= self.levels.len()
            || slot >= self.levels[level].tables.len()
            || self.levels[level].tables[slot] != Some(old)
        {
            return Ok(None);
        }
        let bytes = ftl.read_index_page(old)?;
        self.stats.metadata_flash_reads += 1;
        let len = bytes.len() as u64;
        let new_ppa = ftl.write_index_page(bytes, SpareMeta::index_page())?;
        self.stats.metadata_flash_programs += 1;
        self.levels[level].tables[slot] = Some(new_ppa);
        ftl.retire_index_page(old, len);
        Ok(Some(new_ppa))
    }
}

impl std::fmt::Debug for MultiLevelIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiLevelIndex")
            .field("levels", &self.levels.len())
            .field("keys", &self.len)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhik_ftl::FtlConfig;
    use rhik_nand::NandGeometry;

    fn mix(n: u64) -> KeySignature {
        let mut z = n.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        KeySignature(z ^ (z >> 31))
    }

    fn setup(blocks: u32) -> (Ftl, MultiLevelIndex) {
        let ftl = Ftl::new(FtlConfig {
            geometry: NandGeometry {
                blocks,
                pages_per_block: 8,
                page_size: 512,
                spare_size: 16,
                channels: 2,
            },
            ..FtlConfig::tiny()
        });
        let idx = MultiLevelIndex::new(
            MultiLevelConfig { initial_bits: 1, max_levels: 8, hop_width: 16 },
            512,
        );
        (ftl, idx)
    }

    #[test]
    fn basic_crud() {
        let (mut ftl, mut idx) = setup(64);
        let p = Ppa::new(3, 4);
        assert_eq!(idx.insert(&mut ftl, mix(1), p).unwrap(), InsertOutcome::Inserted);
        assert_eq!(idx.lookup(&mut ftl, mix(1)).unwrap(), Some(p));
        assert_eq!(
            idx.insert(&mut ftl, mix(1), Ppa::new(5, 6)).unwrap(),
            InsertOutcome::Updated { old: p }
        );
        assert_eq!(idx.remove(&mut ftl, mix(1)).unwrap(), Some(Ppa::new(5, 6)));
        assert_eq!(idx.lookup(&mut ftl, mix(1)).unwrap(), None);
        assert_eq!(idx.len(), 0);
    }

    #[test]
    fn grows_levels_and_records_growth_points() {
        let (mut ftl, mut idx) = setup(512);
        for i in 0..1200u64 {
            idx.insert(&mut ftl, mix(i), Ppa::new(0, 0)).unwrap();
        }
        assert!(idx.level_count() >= 3, "levels: {}", idx.level_count());
        assert_eq!(idx.growth_points().len(), idx.level_count() - 1);
        // Growth points are increasing key counts.
        for w in idx.growth_points().windows(2) {
            assert!(w[0] < w[1]);
        }
        for i in 0..1200u64 {
            assert!(idx.lookup(&mut ftl, mix(i)).unwrap().is_some(), "key {i} lost");
        }
    }

    #[test]
    fn lookups_cost_multiple_reads_when_cold() {
        let (mut ftl, mut idx) = setup(512);
        for i in 0..1200u64 {
            idx.insert(&mut ftl, mix(i), Ppa::new(0, 0)).unwrap();
        }
        idx.flush(&mut ftl).unwrap();
        let before = idx.stats().clone();
        for i in 0..1200u64 {
            idx.lookup(&mut ftl, mix(i)).unwrap();
        }
        let after = idx.stats();
        let reads = after.metadata_flash_reads - before.metadata_flash_reads;
        let lookups = after.lookups - before.lookups;
        // The multi-level index reads *more* than one page per lookup on
        // average with a cold/thrashing cache — the Fig. 5b contrast.
        assert!(
            reads as f64 / lookups as f64 > 1.0,
            "expected >1 read/lookup, got {}",
            reads as f64 / lookups as f64
        );
        assert!(after.pct_lookups_within(1) < 100.0);
    }

    #[test]
    fn capacity_cap_enforced() {
        let (mut ftl, idx) = setup(256);
        let mut idx_small = MultiLevelIndex::new(
            MultiLevelConfig { initial_bits: 0, max_levels: 2, hop_width: 16 },
            512,
        );
        // 1 + 2 tables × 30 records = 90 max; inserts beyond must fail.
        let mut stored = 0u64;
        let mut rejected = false;
        for i in 0..200u64 {
            match idx_small.insert(&mut ftl, mix(i), Ppa::new(0, 0)) {
                Ok(_) => stored += 1,
                Err(IndexError::CapacityExhausted) => {
                    rejected = true;
                    break;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(rejected, "cap never hit (stored {stored})");
        assert!(stored <= 90);
        assert!(idx_small.capacity().unwrap() >= stored);
        let _ = idx.len(); // silence unused
    }

    #[test]
    fn missing_key_lookup_counts_histogram() {
        let (mut ftl, mut idx) = setup(64);
        for i in 0..50u64 {
            idx.insert(&mut ftl, mix(i), Ppa::new(0, 0)).unwrap();
        }
        assert_eq!(idx.lookup(&mut ftl, mix(999_999)).unwrap(), None);
        assert!(idx.stats().lookups >= 1);
    }

    #[test]
    fn relocation_preserves_reachability() {
        let (mut ftl, mut idx) = setup(128);
        for i in 0..300u64 {
            idx.insert(&mut ftl, mix(i), Ppa::new(0, 0)).unwrap();
        }
        idx.flush(&mut ftl).unwrap();
        // Find a persisted table and relocate it.
        let mut moved = 0;
        for b in 0..ftl.geometry().blocks {
            for (key, old) in idx.live_index_pages_in(b) {
                ftl.cache().remove(key);
                if idx.relocate_index_page(&mut ftl, key, old).unwrap().is_some() {
                    moved += 1;
                }
                if moved > 3 {
                    break;
                }
            }
            if moved > 3 {
                break;
            }
        }
        assert!(moved > 0);
        for i in 0..300u64 {
            assert!(idx.lookup(&mut ftl, mix(i)).unwrap().is_some(), "key {i} lost");
        }
    }
}
