//! Baseline KVSSD indexing schemes the paper compares against (or draws
//! from):
//!
//! * [`MultiLevelIndex`] — the Samsung-KVSSD-style multi-level hash table
//!   (\[7\] in the paper; the "8-level Multi-Level Hash Index" of Fig. 5).
//!   Levels are appended as the index grows, so lookups probe up to L
//!   tables — up to L flash reads on cache misses. This is the index whose
//!   degradation motivates Fig. 2.
//! * [`SimpleHashIndex`] — a single fixed-size hash table (NVMKV/KVFTL
//!   style, \[4\]): fast while it fits, but with a hard key-count cap — the
//!   "index supports only a limited number of keys" problem of §III.
//! * [`LsmIndex`] — a PinK-style LSM index (\[5\], \[16\]): memtable + tiered
//!   sorted runs with DRAM-pinned fence pointers. Used by the discussion
//!   ablations (§VI "integrate advantages of hash-based and LSM indexing").
//!
//! All three implement [`rhik_ftl::IndexBackend`], so any of them can be
//! plugged into the device emulator in place of RHIK.

mod lsm;
mod multilevel;
mod simple;

pub use lsm::{LsmConfig, LsmIndex};
pub use multilevel::{MultiLevelConfig, MultiLevelIndex};
pub use simple::SimpleHashIndex;
