//! Cross-layer invariant auditing for the RHIK KVSSD stack.
//!
//! The paper's guarantees — ≤ 1 flash read per lookup, signature-only
//! migration that loses no records, one-owner-per-block flash leasing —
//! only hold if a set of cross-structure invariants hold *between* the
//! layers: the DRAM directory, the flash-resident record tables, the FTL's
//! per-block accounting, and the NAND array's program/erase state. This
//! crate turns those invariants into machine-checked code:
//!
//! * [`InvariantViolation`] — one typed variant per invariant, carrying
//!   structured context (slot, signature, physical address) instead of a
//!   formatted string, so tests can match on the *class* of failure.
//! * Snapshot types ([`IndexAuditSnapshot`], [`FlashAudit`]) that each
//!   layer's `audit()` hook fills in. They use plain tuples and integers
//!   for addresses so this crate depends on nothing and every layer can
//!   depend on it without cycles.
//! * [`DeviceAuditor`] — walks the snapshots and verifies the catalog.
//!   It is stateful across calls: migration-cursor monotonicity can only
//!   be checked against the previously observed cursor.
//!
//! The catalog (see DESIGN.md "Invariant catalog" for paper citations):
//!
//! 1. Every directory entry points at a live, correctly-typed flash page.
//! 2. Index-block live-byte accounting equals the pages the index owns.
//! 3. No PPA is owned twice (GC victim vs. resize-migration source, or
//!    two directory keys, or two shards).
//! 4. The migration cursor is monotone and
//!    `migrated + pending == keys_before`.
//! 5. Telemetry occupancy gauges agree with recomputed ground truth.
//! 6. Record tables respect the Eq. 1 capacity bound and hopscotch
//!    neighbourhood discipline.

use std::collections::HashMap;
use std::fmt;

/// A physical page address as `(block, page)`. Kept as a bare tuple so
/// this crate has no dependency on the NAND crate (which depends on us).
pub type RawPpa = (u32, u32);

/// Spare-area page-kind tags, mirrored from `rhik_ftl::layout::PageKind`.
/// (Kept in sync by a unit test in the ftl crate.)
pub const KIND_HEAD: u8 = 1;
pub const KIND_CONT: u8 = 2;
pub const KIND_INDEX: u8 = 3;
pub const KIND_DIRECTORY: u8 = 4;

fn kind_name(tag: u8) -> &'static str {
    match tag {
        KIND_HEAD => "head",
        KIND_CONT => "cont",
        KIND_INDEX => "index",
        KIND_DIRECTORY => "directory",
        _ => "unknown",
    }
}

/// One violated invariant, with enough structure to assert on in tests.
#[derive(Clone, Debug, PartialEq)]
pub enum InvariantViolation {
    // ------------------------------------------------ record table (Eq. 1)
    /// A hop bitmap names a displacement past the table's hop width.
    HopBitOutOfRange { home: u32, bit: u32, hop_width: u32 },
    /// A hop bit points at a slot that holds no record.
    HopBitTargetsEmptySlot { home: u32, bit: u32, slot: u32 },
    /// A record sits in `slot` covered by `home`'s bitmap, but its stored
    /// signature does not hash to `home`.
    MisHomedRecord { slot: u32, home: u32, sig: u64 },
    /// Two hop bitmaps both claim the same occupied slot.
    SlotCoveredTwice { slot: u32, sig: u64 },
    /// Occupied slots, bitmap-covered slots, and the table's length
    /// counter disagree.
    CoverageMismatch { covered: u32, occupied: u32, len: u32 },

    // ------------------------------------------ directory → flash → NAND
    /// A directory entry (or snapshot pointer) addresses a page the NAND
    /// array has not programmed.
    DanglingDirEntry { shard: u32, key: u64, ppa: RawPpa },
    /// The page exists but its spare area decodes to the wrong kind (or
    /// does not decode at all; `found` is `None` then).
    WrongPageKind { shard: u32, key: u64, ppa: RawPpa, expected: u8, found: Option<u8> },
    /// An index-owned page lives in a block the allocator says belongs to
    /// a different stream (or to no stream at all).
    ForeignStreamPage { shard: u32, key: u64, ppa: RawPpa, stream: Option<&'static str> },
    /// The same physical page is claimed by two owners — e.g. a GC victim
    /// relocation source and a resize-migration source.
    DoublePpaOwnership {
        ppa: RawPpa,
        first_shard: u32,
        first_key: u64,
        second_shard: u32,
        second_key: u64,
    },
    /// An index-stream block's live-byte accounting disagrees with the
    /// pages the index actually owns in it.
    LiveBytesMismatch { shard: u32, block: u32, live_bytes: u64, owned_pages: u32, page_size: u32 },
    /// The NAND write pointer ran ahead of the allocator's page count —
    /// someone programmed a page the allocator never handed out.
    AllocatorBehindFlash { shard: u32, block: u32, programmed: u32, allocated: u32 },
    /// A record table holds more records than Eq. 1 allows per page.
    EntryOverCapacity { shard: u32, slot: u32, records: u32, capacity: u32 },
    /// An entry reports overflow records without an overflow table (or
    /// vice versa).
    OverflowInconsistent { shard: u32, slot: u32, overflow_records: u32, has_overflow: bool },
    /// The index's key count and the directory's per-entry record sums
    /// disagree.
    RecordCountMismatch { shard: u32, index_len: u64, directory_records: u64 },

    // --------------------------------------------------------- migration
    /// The migration cursor moved backwards between two audits of the
    /// same directory generation.
    CursorRegressed { shard: u32, generation: u64, prev: u32, now: u32 },
    /// `migrated + pending != keys_before`: the split lost or duplicated
    /// records.
    MigrationAccounting { shard: u32, migrated: u64, pending: u64, keys_before: u64 },

    // -------------------------------------------------- flash pool / NAND
    /// One erase block is leased by two shards at once.
    BlockLeasedTwice { block: u32, first_shard: u32, second_shard: u32 },
    /// Free-pool accounting: free + leased does not cover the device.
    FreeCountMismatch { free_raw: u32, leased: u32, total: u32 },
    /// NAND internal: a block in the erased state still holds page data,
    /// or a programmed page has no payload.
    NandStateMismatch { ppa: RawPpa, detail: &'static str },

    // --------------------------------------------------------- telemetry
    /// A published gauge disagrees with ground truth recomputed from the
    /// live structures.
    GaugeDrift { gauge: String, reported: f64, actual: f64 },

    // -------------------------------------------------- hot-object cache
    /// A current-version cache entry disagrees with the directory →
    /// record-page → FTL chain — the cache would serve a value the index
    /// does not hold.
    CacheIncoherent { shard: u32, sig: u64, detail: &'static str },
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use InvariantViolation::*;
        match self {
            HopBitOutOfRange { home, bit, hop_width } => {
                write!(f, "home {home}: hop bit {bit} beyond width {hop_width}")
            }
            HopBitTargetsEmptySlot { home, bit, slot } => {
                write!(f, "home {home}: hop bit {bit} points at empty slot {slot}")
            }
            MisHomedRecord { slot, home, sig } => {
                write!(f, "slot {slot} homed at {home} but sig {sig:#x} hashes elsewhere")
            }
            SlotCoveredTwice { slot, sig } => {
                write!(f, "slot {slot} (sig {sig:#x}) covered by two hop bitmaps")
            }
            CoverageMismatch { covered, occupied, len } => {
                write!(f, "coverage mismatch: covered {covered}, occupied {occupied}, len {len}")
            }
            DanglingDirEntry { shard, key, ppa } => {
                write!(f, "shard {shard}: key {key:#x} points at unprogrammed page {ppa:?}")
            }
            WrongPageKind { shard, key, ppa, expected, found } => write!(
                f,
                "shard {shard}: key {key:#x} at {ppa:?} expected {} page, found {}",
                kind_name(*expected),
                found.map_or("undecodable spare", kind_name)
            ),
            ForeignStreamPage { shard, key, ppa, stream } => write!(
                f,
                "shard {shard}: index page {key:#x} at {ppa:?} in {} block",
                stream.unwrap_or("unleased")
            ),
            DoublePpaOwnership { ppa, first_shard, first_key, second_shard, second_key } => write!(
                f,
                "page {ppa:?} owned twice: shard {first_shard} key {first_key:#x} and shard {second_shard} key {second_key:#x}"
            ),
            LiveBytesMismatch { shard, block, live_bytes, owned_pages, page_size } => write!(
                f,
                "shard {shard}: index block {block} accounts {live_bytes} live bytes but the index owns {owned_pages} pages of {page_size} B"
            ),
            AllocatorBehindFlash { shard, block, programmed, allocated } => write!(
                f,
                "shard {shard}: block {block} has {programmed} programmed pages but only {allocated} allocated"
            ),
            EntryOverCapacity { shard, slot, records, capacity } => write!(
                f,
                "shard {shard}: directory slot {slot} claims {records} records, over the Eq. 1 bound {capacity}"
            ),
            OverflowInconsistent { shard, slot, overflow_records, has_overflow } => write!(
                f,
                "shard {shard}: slot {slot} overflow_records={overflow_records} but has_overflow={has_overflow}"
            ),
            RecordCountMismatch { shard, index_len, directory_records } => write!(
                f,
                "shard {shard}: index len {index_len} != directory record sum {directory_records}"
            ),
            CursorRegressed { shard, generation, prev, now } => write!(
                f,
                "shard {shard} gen {generation}: migration cursor regressed {prev} -> {now}"
            ),
            MigrationAccounting { shard, migrated, pending, keys_before } => write!(
                f,
                "shard {shard}: migrated {migrated} + pending {pending} != keys_before {keys_before}"
            ),
            BlockLeasedTwice { block, first_shard, second_shard } => {
                write!(f, "block {block} leased by shards {first_shard} and {second_shard}")
            }
            FreeCountMismatch { free_raw, leased, total } => {
                write!(f, "free pool accounts {free_raw} free + {leased} leased of {total} blocks")
            }
            NandStateMismatch { ppa, detail } => write!(f, "NAND state at {ppa:?}: {detail}"),
            GaugeDrift { gauge, reported, actual } => {
                write!(f, "gauge {gauge} reports {reported} but ground truth is {actual}")
            }
            CacheIncoherent { shard, sig, detail } => {
                write!(f, "shard {shard}: cached sig {sig:#x} incoherent with index: {detail}")
            }
        }
    }
}

impl std::error::Error for InvariantViolation {}

/// What an owned page looked like when the hook peeked at it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObservedPage {
    /// The NAND array has not programmed this page.
    Unprogrammed,
    /// Programmed, but the spare area does not decode.
    Undecodable,
    /// Programmed with this spare-area kind tag.
    Kind(u8),
}

/// One flash page the index claims to own, as reported by the index's
/// audit hook (which peeks at the page without charging a flash read).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OwnedPage {
    /// The index's logical key for the page (directory cache key,
    /// overflow key, or snapshot-page key).
    pub key: u64,
    pub ppa: RawPpa,
    /// Spare-area kind tag this page must carry.
    pub expected_kind: u8,
    pub observed: ObservedPage,
}

/// Per-directory-entry counters for the Eq. 1 capacity check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EntryAudit {
    pub slot: u32,
    pub records: u32,
    pub overflow_records: u32,
    pub has_overflow: bool,
}

/// Migration state at audit time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MigrationAudit {
    /// Directory generation the migration is building.
    pub generation: u64,
    pub cursor: u32,
    pub migrated: u64,
    pub keys_before: u64,
    /// Records still sitting in un-split old-generation slots.
    pub pending: u64,
}

/// Everything the index layer exposes to the auditor.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IndexAuditSnapshot {
    pub shard: u32,
    pub len: u64,
    /// Eq. 1 records-per-table bound.
    pub records_per_table: u32,
    /// Sum of records reachable through the directory (current-generation
    /// entries plus pending un-split old-generation entries).
    pub directory_records: u64,
    pub entries: Vec<EntryAudit>,
    pub owned_pages: Vec<OwnedPage>,
    pub migration: Option<MigrationAudit>,
}

/// Per-erase-block accounting joined across the allocator and NAND.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockAccounting {
    pub block: u32,
    /// `"data"`, `"extent"`, `"index"`, or `None` when unleased.
    pub stream: Option<&'static str>,
    pub live_bytes: u64,
    pub stale_bytes: u64,
    /// Pages the allocator has handed out.
    pub pages_allocated: u32,
    /// Pages NAND has actually programmed.
    pub pages_programmed: u32,
}

/// Everything the FTL layer exposes to the auditor.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FlashAudit {
    pub shard: u32,
    pub page_size: u32,
    pub total_blocks: u32,
    /// Raw free-pool count (shared pool in sharded mode).
    pub free_raw: u32,
    pub blocks: Vec<BlockAccounting>,
    /// Violations the NAND array found in its own state.
    pub nand_violations: Vec<InvariantViolation>,
}

/// One hot-cache entry joined against the index chain it must mirror.
///
/// The device builds these under the shard lock: for every resident
/// cache entry whose fill version still equals the version table's
/// current value, it re-reads the key through the directory →
/// record-page → FTL chain and reports what it found. Entries whose
/// fill version is already superseded are *not* sampled — they are
/// unservable by construction (the reader's version check drops them).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheCoherenceSample {
    pub shard: u32,
    pub sig: u64,
    /// Version the entry was filled at.
    pub fill_version: u64,
    /// Version-table value at sample time (must equal `fill_version`,
    /// or the device should not have sampled the entry).
    pub current_version: u64,
    /// The bytes the cache would serve.
    pub cached_value: Vec<u8>,
    /// What the index chain holds: `None` when the chain could not be
    /// walked without side effects (e.g. the value still sits in a
    /// write buffer) — the sample is skipped; `Some(None)` when the key
    /// is absent from the index (a ghost entry); `Some(Some(v))` the
    /// chain's value.
    pub index_value: Option<Option<Vec<u8>>>,
}

/// A gauge the device published, paired with recomputed ground truth.
#[derive(Clone, Debug, PartialEq)]
pub struct GaugeCheck {
    pub gauge: String,
    /// `None` when telemetry is disabled or the gauge was never set —
    /// nothing to check then.
    pub reported: Option<f64>,
    pub actual: f64,
}

/// Result of one audit pass.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AuditReport {
    pub violations: Vec<InvariantViolation>,
}

impl AuditReport {
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panic-friendly accessor for tests: `Ok(())` or the full list.
    pub fn into_result(self) -> Result<(), Vec<InvariantViolation>> {
        if self.violations.is_empty() {
            Ok(())
        } else {
            Err(self.violations)
        }
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.violations.is_empty() {
            return write!(f, "audit clean");
        }
        writeln!(f, "{} invariant violation(s):", self.violations.len())?;
        for v in &self.violations {
            writeln!(f, "  - {v}")?;
        }
        Ok(())
    }
}

/// Walks layer snapshots and verifies the invariant catalog.
///
/// Stateful: cursor monotonicity is judged against the cursor seen on the
/// *previous* audit of the same `(shard, generation)`. One auditor should
/// live as long as the device it watches.
#[derive(Debug, Default)]
pub struct DeviceAuditor {
    /// Last observed `(cursor, migrated)` per shard; the generation tag
    /// resets the watermark when a new doubling starts.
    cursors: HashMap<u32, (u64, u32, u64)>,
}

impl DeviceAuditor {
    pub fn new() -> Self {
        Self::default()
    }

    /// Audit a single (unsharded) device: one flash front-end, one index.
    pub fn check_device(
        &mut self,
        flash: &FlashAudit,
        index: &IndexAuditSnapshot,
        gauges: &[GaugeCheck],
    ) -> AuditReport {
        let mut v = Vec::new();
        self.check_flash(flash, &mut v);
        self.check_index(flash, index, &mut v);
        check_ownership(std::slice::from_ref(index), &mut v);
        check_gauges(gauges, &mut v);
        AuditReport { violations: v }
    }

    /// Audit a sharded device: per-shard checks plus the cross-shard
    /// block-lease and free-pool invariants.
    pub fn check_sharded(
        &mut self,
        shards: &[(FlashAudit, IndexAuditSnapshot)],
        gauges: &[GaugeCheck],
    ) -> AuditReport {
        let mut v = Vec::new();
        for (flash, index) in shards {
            self.check_flash(flash, &mut v);
            self.check_index(flash, index, &mut v);
        }
        let indexes: Vec<IndexAuditSnapshot> = shards.iter().map(|(_, i)| i.clone()).collect();
        check_ownership(&indexes, &mut v);
        check_leases(shards, &mut v);
        check_gauges(gauges, &mut v);
        AuditReport { violations: v }
    }

    /// Cache↔index coherence pass: no serveable cached value may
    /// disagree with the directory → record-page → FTL chain.
    pub fn check_cache(&mut self, samples: &[CacheCoherenceSample]) -> AuditReport {
        let mut v = Vec::new();
        for s in samples {
            if s.current_version != s.fill_version {
                // The device sampled an entry a concurrent writer already
                // invalidated — the entry is unservable, but sampling it
                // at all means the snapshot discipline broke.
                v.push(InvariantViolation::CacheIncoherent {
                    shard: s.shard,
                    sig: s.sig,
                    detail: "sampled entry with superseded fill version",
                });
                continue;
            }
            match &s.index_value {
                None => {} // unverifiable without side effects; skipped
                Some(None) => v.push(InvariantViolation::CacheIncoherent {
                    shard: s.shard,
                    sig: s.sig,
                    detail: "cached entry for a key absent from the index (ghost)",
                }),
                Some(Some(chain)) if chain != &s.cached_value => {
                    v.push(InvariantViolation::CacheIncoherent {
                        shard: s.shard,
                        sig: s.sig,
                        detail: "cached bytes differ from the index chain's value",
                    });
                }
                Some(Some(_)) => {}
            }
        }
        AuditReport { violations: v }
    }

    fn check_flash(&self, flash: &FlashAudit, v: &mut Vec<InvariantViolation>) {
        v.extend(flash.nand_violations.iter().cloned());
        for b in &flash.blocks {
            if b.pages_programmed > b.pages_allocated {
                v.push(InvariantViolation::AllocatorBehindFlash {
                    shard: flash.shard,
                    block: b.block,
                    programmed: b.pages_programmed,
                    allocated: b.pages_allocated,
                });
            }
        }
    }

    fn check_index(
        &mut self,
        flash: &FlashAudit,
        index: &IndexAuditSnapshot,
        v: &mut Vec<InvariantViolation>,
    ) {
        let shard = index.shard;
        let block_of: HashMap<u32, &BlockAccounting> =
            flash.blocks.iter().map(|b| (b.block, b)).collect();

        // 1. Every owned page is programmed, correctly typed, and sits in
        //    an index-stream block.
        let mut owned_per_block: HashMap<u32, u32> = HashMap::new();
        for p in &index.owned_pages {
            match p.observed {
                ObservedPage::Unprogrammed => {
                    v.push(InvariantViolation::DanglingDirEntry { shard, key: p.key, ppa: p.ppa })
                }
                ObservedPage::Undecodable => v.push(InvariantViolation::WrongPageKind {
                    shard,
                    key: p.key,
                    ppa: p.ppa,
                    expected: p.expected_kind,
                    found: None,
                }),
                ObservedPage::Kind(k) if k != p.expected_kind => {
                    v.push(InvariantViolation::WrongPageKind {
                        shard,
                        key: p.key,
                        ppa: p.ppa,
                        expected: p.expected_kind,
                        found: Some(k),
                    })
                }
                ObservedPage::Kind(_) => {}
            }
            let stream = block_of.get(&p.ppa.0).and_then(|b| b.stream);
            if stream != Some("index") {
                v.push(InvariantViolation::ForeignStreamPage {
                    shard,
                    key: p.key,
                    ppa: p.ppa,
                    stream,
                });
            }
            *owned_per_block.entry(p.ppa.0).or_default() += 1;
        }

        // 2. Index-block live bytes equal the pages the index owns there.
        for b in &flash.blocks {
            if b.stream != Some("index") {
                continue;
            }
            let owned = owned_per_block.get(&b.block).copied().unwrap_or(0);
            if b.live_bytes != owned as u64 * flash.page_size as u64 {
                v.push(InvariantViolation::LiveBytesMismatch {
                    shard,
                    block: b.block,
                    live_bytes: b.live_bytes,
                    owned_pages: owned,
                    page_size: flash.page_size,
                });
            }
        }

        // 3. Eq. 1 capacity bound and overflow consistency per entry.
        for e in &index.entries {
            if e.records > index.records_per_table {
                v.push(InvariantViolation::EntryOverCapacity {
                    shard,
                    slot: e.slot,
                    records: e.records,
                    capacity: index.records_per_table,
                });
            }
            if (e.overflow_records > 0) != e.has_overflow {
                v.push(InvariantViolation::OverflowInconsistent {
                    shard,
                    slot: e.slot,
                    overflow_records: e.overflow_records,
                    has_overflow: e.has_overflow,
                });
            }
        }

        // 4. Directory record sums account for every indexed key.
        if index.directory_records != index.len {
            v.push(InvariantViolation::RecordCountMismatch {
                shard,
                index_len: index.len,
                directory_records: index.directory_records,
            });
        }

        // 5. Migration accounting and cursor monotonicity.
        if let Some(m) = &index.migration {
            if m.migrated + m.pending != m.keys_before {
                v.push(InvariantViolation::MigrationAccounting {
                    shard,
                    migrated: m.migrated,
                    pending: m.pending,
                    keys_before: m.keys_before,
                });
            }
            match self.cursors.get(&shard) {
                Some(&(gen, cursor, migrated))
                    if gen == m.generation && (m.cursor < cursor || m.migrated < migrated) =>
                {
                    v.push(InvariantViolation::CursorRegressed {
                        shard,
                        generation: m.generation,
                        prev: cursor,
                        now: m.cursor,
                    });
                }
                _ => {}
            }
            self.cursors.insert(shard, (m.generation, m.cursor, m.migrated));
        } else {
            self.cursors.remove(&shard);
        }
    }
}

/// No PPA may be claimed by two owners — across keys within a shard
/// (e.g. a GC relocation source vs. a resize-migration source) or across
/// shards.
fn check_ownership(indexes: &[IndexAuditSnapshot], v: &mut Vec<InvariantViolation>) {
    let mut owners: HashMap<RawPpa, (u32, u64)> = HashMap::new();
    for index in indexes {
        for p in &index.owned_pages {
            match owners.get(&p.ppa) {
                Some(&(shard, key)) => v.push(InvariantViolation::DoublePpaOwnership {
                    ppa: p.ppa,
                    first_shard: shard,
                    first_key: key,
                    second_shard: index.shard,
                    second_key: p.key,
                }),
                None => {
                    owners.insert(p.ppa, (index.shard, p.key));
                }
            }
        }
    }
}

/// Cross-shard lease discipline over one shared flash pool: each erase
/// block is leased by at most one shard, and free + leased covers the
/// device exactly.
fn check_leases(shards: &[(FlashAudit, IndexAuditSnapshot)], v: &mut Vec<InvariantViolation>) {
    let Some((first, _)) = shards.first() else { return };
    let mut leased_by: HashMap<u32, u32> = HashMap::new();
    for (flash, _) in shards {
        for b in &flash.blocks {
            if b.stream.is_none() {
                continue;
            }
            match leased_by.get(&b.block) {
                Some(&shard) => v.push(InvariantViolation::BlockLeasedTwice {
                    block: b.block,
                    first_shard: shard,
                    second_shard: flash.shard,
                }),
                None => {
                    leased_by.insert(b.block, flash.shard);
                }
            }
        }
    }
    let leased = leased_by.len() as u32;
    if first.free_raw + leased != first.total_blocks {
        v.push(InvariantViolation::FreeCountMismatch {
            free_raw: first.free_raw,
            leased,
            total: first.total_blocks,
        });
    }
}

fn check_gauges(gauges: &[GaugeCheck], v: &mut Vec<InvariantViolation>) {
    for g in gauges {
        if let Some(reported) = g.reported {
            if (reported - g.actual).abs() > 1e-9 {
                v.push(InvariantViolation::GaugeDrift {
                    gauge: g.gauge.clone(),
                    reported,
                    actual: g.actual,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_coherence_pass_flags_each_failure_mode() {
        let mut auditor = DeviceAuditor::new();
        let sample = |fill, current, cached: &[u8], index_value| CacheCoherenceSample {
            shard: 0,
            sig: 0xAB,
            fill_version: fill,
            current_version: current,
            cached_value: cached.to_vec(),
            index_value,
        };
        // Clean: value matches; unverifiable: skipped.
        let report = auditor.check_cache(&[
            sample(3, 3, b"v", Some(Some(b"v".to_vec()))),
            sample(3, 3, b"v", None),
        ]);
        assert!(report.is_ok(), "{report}");
        // Ghost, mismatch, and superseded-version sampling all flagged.
        let report = auditor.check_cache(&[
            sample(3, 3, b"v", Some(None)),
            sample(3, 3, b"v", Some(Some(b"other".to_vec()))),
            sample(2, 3, b"v", Some(Some(b"v".to_vec()))),
        ]);
        assert_eq!(report.violations.len(), 3);
        assert!(report
            .violations
            .iter()
            .all(|v| matches!(v, InvariantViolation::CacheIncoherent { .. })));
    }

    fn index_block(block: u32, live_pages: u32, page_size: u32) -> BlockAccounting {
        BlockAccounting {
            block,
            stream: Some("index"),
            live_bytes: live_pages as u64 * page_size as u64,
            stale_bytes: 0,
            pages_allocated: live_pages,
            pages_programmed: live_pages,
        }
    }

    fn owned(key: u64, ppa: RawPpa) -> OwnedPage {
        OwnedPage { key, ppa, expected_kind: KIND_INDEX, observed: ObservedPage::Kind(KIND_INDEX) }
    }

    fn clean_fixture() -> (FlashAudit, IndexAuditSnapshot) {
        let flash = FlashAudit {
            shard: 0,
            page_size: 512,
            total_blocks: 8,
            free_raw: 7,
            blocks: vec![index_block(0, 2, 512)],
            nand_violations: Vec::new(),
        };
        let index = IndexAuditSnapshot {
            shard: 0,
            len: 5,
            records_per_table: 16,
            directory_records: 5,
            entries: vec![EntryAudit {
                slot: 0,
                records: 5,
                overflow_records: 0,
                has_overflow: false,
            }],
            owned_pages: vec![owned(1, (0, 0)), owned(2, (0, 1))],
            migration: None,
        };
        (flash, index)
    }

    #[test]
    fn clean_state_audits_clean() {
        let (flash, index) = clean_fixture();
        let mut auditor = DeviceAuditor::new();
        let report = auditor.check_device(&flash, &index, &[]);
        assert!(report.is_ok(), "{report}");
    }

    #[test]
    fn dangling_entry_detected() {
        let (flash, mut index) = clean_fixture();
        index.owned_pages[0].observed = ObservedPage::Unprogrammed;
        // The live-byte accounting still matches (the page *was* counted),
        // so exactly the dangling-entry violation fires.
        let report = DeviceAuditor::new().check_device(&flash, &index, &[]);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, InvariantViolation::DanglingDirEntry { key: 1, .. })));
    }

    #[test]
    fn wrong_kind_detected() {
        let (flash, mut index) = clean_fixture();
        index.owned_pages[1].observed = ObservedPage::Kind(KIND_HEAD);
        let report = DeviceAuditor::new().check_device(&flash, &index, &[]);
        assert_eq!(
            report.violations,
            vec![InvariantViolation::WrongPageKind {
                shard: 0,
                key: 2,
                ppa: (0, 1),
                expected: KIND_INDEX,
                found: Some(KIND_HEAD),
            }]
        );
    }

    #[test]
    fn double_ownership_detected() {
        let (flash, mut index) = clean_fixture();
        index.owned_pages.push(owned(9, (0, 0)));
        let report = DeviceAuditor::new().check_device(&flash, &index, &[]);
        assert!(report.violations.iter().any(|v| matches!(
            v,
            InvariantViolation::DoublePpaOwnership { ppa: (0, 0), first_key: 1, second_key: 9, .. }
        )));
    }

    #[test]
    fn live_byte_mismatch_detected() {
        let (mut flash, index) = clean_fixture();
        flash.blocks[0].live_bytes += 512; // phantom live page
        let report = DeviceAuditor::new().check_device(&flash, &index, &[]);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, InvariantViolation::LiveBytesMismatch { block: 0, .. })));
    }

    #[test]
    fn record_count_mismatch_detected() {
        let (flash, mut index) = clean_fixture();
        index.directory_records = 4;
        let report = DeviceAuditor::new().check_device(&flash, &index, &[]);
        assert!(report.violations.iter().any(|v| matches!(
            v,
            InvariantViolation::RecordCountMismatch { index_len: 5, directory_records: 4, .. }
        )));
    }

    #[test]
    fn migration_accounting_and_cursor_monotonicity() {
        let (flash, mut index) = clean_fixture();
        index.migration = Some(MigrationAudit {
            generation: 2,
            cursor: 3,
            migrated: 3,
            keys_before: 5,
            pending: 2,
        });
        let mut auditor = DeviceAuditor::new();
        assert!(auditor.check_device(&flash, &index, &[]).is_ok());

        // Cursor moves forward: fine.
        index.migration = Some(MigrationAudit {
            generation: 2,
            cursor: 4,
            migrated: 4,
            keys_before: 5,
            pending: 1,
        });
        assert!(auditor.check_device(&flash, &index, &[]).is_ok());

        // Cursor regresses within the same generation: violation.
        index.migration = Some(MigrationAudit {
            generation: 2,
            cursor: 2,
            migrated: 4,
            keys_before: 5,
            pending: 1,
        });
        let report = auditor.check_device(&flash, &index, &[]);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, InvariantViolation::CursorRegressed { prev: 4, now: 2, .. })));

        // A new generation resets the watermark.
        index.migration = Some(MigrationAudit {
            generation: 3,
            cursor: 0,
            migrated: 0,
            keys_before: 5,
            pending: 5,
        });
        assert!(auditor.check_device(&flash, &index, &[]).is_ok());

        // Lost records: migrated + pending < keys_before.
        index.migration = Some(MigrationAudit {
            generation: 3,
            cursor: 1,
            migrated: 1,
            keys_before: 5,
            pending: 3,
        });
        let report = auditor.check_device(&flash, &index, &[]);
        assert!(report.violations.iter().any(|v| matches!(
            v,
            InvariantViolation::MigrationAccounting { migrated: 1, pending: 3, keys_before: 5, .. }
        )));
    }

    #[test]
    fn cross_shard_lease_and_free_count() {
        let page = 512;
        let mk = |shard: u32, block: u32| FlashAudit {
            shard,
            page_size: page,
            total_blocks: 8,
            free_raw: 6,
            blocks: vec![index_block(block, 1, page)],
            nand_violations: Vec::new(),
        };
        let idx = |shard: u32, block: u32| IndexAuditSnapshot {
            shard,
            len: 0,
            records_per_table: 16,
            directory_records: 0,
            entries: Vec::new(),
            owned_pages: vec![OwnedPage {
                key: 1,
                ppa: (block, 0),
                expected_kind: KIND_INDEX,
                observed: ObservedPage::Kind(KIND_INDEX),
            }],
            migration: None,
        };
        let mut auditor = DeviceAuditor::new();
        // Disjoint leases, 2 leased + 6 free of 8: clean.
        let shards = vec![(mk(0, 0), idx(0, 0)), (mk(1, 1), idx(1, 1))];
        assert!(auditor.check_sharded(&shards, &[]).is_ok());

        // Same block leased twice: violation (and a double-ownership one
        // for the page both shards claim).
        let shards = vec![(mk(0, 3), idx(0, 3)), (mk(1, 3), idx(1, 3))];
        let report = auditor.check_sharded(&shards, &[]);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, InvariantViolation::BlockLeasedTwice { block: 3, .. })));
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, InvariantViolation::DoublePpaOwnership { ppa: (3, 0), .. })));

        // Free count off by one: violation.
        let mut bad = mk(0, 0);
        bad.free_raw = 5;
        let shards = vec![(bad, idx(0, 0)), (mk(1, 1), idx(1, 1))];
        let report = auditor.check_sharded(&shards, &[]);
        assert!(report.violations.iter().any(|v| matches!(
            v,
            InvariantViolation::FreeCountMismatch { free_raw: 5, leased: 2, total: 8 }
        )));
    }

    #[test]
    fn gauge_drift_detected_and_missing_gauge_skipped() {
        let (flash, index) = clean_fixture();
        let gauges = vec![
            GaugeCheck { gauge: "occ".into(), reported: Some(0.5), actual: 0.5 },
            GaugeCheck { gauge: "drift".into(), reported: Some(0.9), actual: 0.5 },
            GaugeCheck { gauge: "unset".into(), reported: None, actual: 0.5 },
        ];
        let report = DeviceAuditor::new().check_device(&flash, &index, &gauges);
        assert_eq!(report.violations.len(), 1);
        assert!(matches!(
            &report.violations[0],
            InvariantViolation::GaugeDrift { gauge, .. } if gauge == "drift"
        ));
    }

    #[test]
    fn eq1_capacity_and_overflow_consistency() {
        let (flash, mut index) = clean_fixture();
        index.entries.push(EntryAudit {
            slot: 1,
            records: 17,
            overflow_records: 3,
            has_overflow: false,
        });
        index.directory_records = 5; // keep the count check quiet is impossible; accept both
        let report = DeviceAuditor::new().check_device(&flash, &index, &[]);
        assert!(report.violations.iter().any(|v| matches!(
            v,
            InvariantViolation::EntryOverCapacity { slot: 1, records: 17, capacity: 16, .. }
        )));
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, InvariantViolation::OverflowInconsistent { slot: 1, .. })));
    }

    #[test]
    fn violations_display_cleanly() {
        let v = InvariantViolation::MisHomedRecord { slot: 3, home: 1, sig: 0xabc };
        assert!(v.to_string().contains("slot 3"));
        let report = AuditReport { violations: vec![v] };
        assert!(report.to_string().contains("1 invariant violation"));
        assert!(!report.is_ok());
        assert!(report.into_result().is_err());
    }
}
