//! Log-linear latency histogram (HDR-style, zero allocation per sample).
//!
//! Pure power-of-two buckets cap relative error at 100%: every sample in
//! `[2^21, 2^22)` reports its percentile as 2 097 152 ns, which is how a
//! put tail comes out as exactly `p99 = 2097152` regardless of where in
//! that 1 ms-wide bucket the distribution actually sits. Splitting each
//! power-of-two *major* bucket into [`SUB_BUCKETS`] linear sub-buckets
//! bounds the relative error of any reported edge by
//! `1 / SUB_BUCKETS = 25%` while keeping the record path branch-free
//! arithmetic on the sample's leading zeros.

/// Linear sub-buckets per power-of-two major bucket (must stay a power
/// of two; 4 bounds bucket-edge relative error at 25%).
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;
const SUB_BITS: u32 = 2;

/// Total bucket count: values `< SUB_BUCKETS` map one-to-one, and every
/// major bucket `[2^m, 2^(m+1))` for `m in SUB_BITS..64` contributes
/// `SUB_BUCKETS` sub-buckets — enough to cover all of `u64`.
pub const NUM_BUCKETS: usize = (64 - SUB_BITS as usize + 1) << SUB_BITS;

/// Latency histogram with log-linear nanosecond buckets: power-of-two
/// majors, [`SUB_BUCKETS`] linear sub-buckets each (≤25% edge error).
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { buckets: [0; NUM_BUCKETS], count: 0, sum_ns: 0, max_ns: 0 }
    }
}

/// Bucket index of a sample value.
#[inline]
fn index_of(ns: u64) -> usize {
    if ns < SUB_BUCKETS as u64 {
        return ns as usize;
    }
    let major = 63 - ns.leading_zeros(); // ns ∈ [2^major, 2^(major+1))
    let sub = (ns >> (major - SUB_BITS)) & (SUB_BUCKETS as u64 - 1);
    (((major - SUB_BITS + 1) << SUB_BITS) + sub as u32) as usize
}

impl LatencyHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one latency sample.
    #[inline]
    pub fn record(&mut self, ns: u64) {
        self.buckets[index_of(ns)] += 1;
        self.count += 1;
        self.sum_ns += ns;
        self.max_ns = self.max_ns.max(ns);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Raw bucket counts; bucket `i` covers
    /// `[bucket_lower_ns(i), bucket_upper_ns(i))`.
    pub fn bucket_counts(&self) -> &[u64; NUM_BUCKETS] {
        &self.buckets
    }

    /// Lower edge (inclusive) of bucket `i` in nanoseconds.
    pub fn bucket_lower_ns(i: usize) -> u64 {
        if i < SUB_BUCKETS {
            return i as u64;
        }
        let major = (i >> SUB_BITS) as u32 - 1 + SUB_BITS;
        let sub = (i & (SUB_BUCKETS - 1)) as u64;
        let width = 1u64 << (major - SUB_BITS);
        (1u64 << major) + sub * width
    }

    /// Upper edge (exclusive) of bucket `i` in nanoseconds (saturating:
    /// the last sub-bucket's edge would be `2^64`).
    pub fn bucket_upper_ns(i: usize) -> u64 {
        if i < SUB_BUCKETS {
            return i as u64 + 1;
        }
        let major = (i >> SUB_BITS) as u32 - 1 + SUB_BITS;
        let width = 1u64 << (major - SUB_BITS);
        Self::bucket_lower_ns(i).saturating_add(width)
    }

    /// Approximate percentile (upper edge of the containing bucket, so
    /// over-reported by at most `1 / SUB_BUCKETS`).
    pub fn percentile_ns(&self, p: f64) -> u64 {
        assert!((0.0..=100.0).contains(&p));
        if self.count == 0 {
            return 0;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Never report past the observed maximum (the last
                // occupied bucket's edge can overshoot it).
                return Self::bucket_upper_ns(i).min(self.max_ns.max(1));
            }
        }
        self.max_ns
    }

    /// Median latency (upper bucket edge).
    pub fn p50_ns(&self) -> u64 {
        self.percentile_ns(50.0)
    }

    /// 99th-percentile latency (upper bucket edge).
    pub fn p99_ns(&self) -> u64 {
        self.percentile_ns(99.0)
    }

    /// 99.9th-percentile latency (upper bucket edge) — the tail that resize
    /// stalls dominate.
    pub fn p999_ns(&self) -> u64 {
        self.percentile_ns(99.9)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Bucket-wise difference `self - earlier`, saturating at zero so a
    /// snapshot taken across a reset yields zeros rather than wrapping.
    /// `max_ns` carries over from `self` (a maximum cannot be diffed).
    pub fn since(&self, earlier: &LatencyHistogram) -> LatencyHistogram {
        let mut buckets = [0u64; NUM_BUCKETS];
        for (i, b) in buckets.iter_mut().enumerate() {
            *b = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        LatencyHistogram {
            buckets,
            count: self.count.saturating_sub(earlier.count),
            sum_ns: self.sum_ns.saturating_sub(earlier.sum_ns),
            max_ns: self.max_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.percentile_ns(99.0), 0);
    }

    #[test]
    fn records_and_percentiles() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(1_000);
        }
        h.record(1_000_000);
        assert_eq!(h.count(), 100);
        assert!(h.percentile_ns(50.0) < 5_000);
        assert!(h.percentile_ns(100.0) >= 1_000_000 / 2);
        assert_eq!(h.max_ns(), 1_000_000);
        assert!((h.mean_ns() - (99.0 * 1000.0 + 1e6) / 100.0).abs() < 1.0);
    }

    #[test]
    fn zero_latency_is_fine() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(1);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn bucket_edges_are_contiguous_and_cover_u64() {
        let mut prev_upper = 0u64;
        for i in 0..NUM_BUCKETS {
            assert_eq!(
                LatencyHistogram::bucket_lower_ns(i),
                prev_upper,
                "gap or overlap at bucket {i}"
            );
            let upper = LatencyHistogram::bucket_upper_ns(i);
            assert!(upper > prev_upper || i == NUM_BUCKETS - 1);
            prev_upper = upper;
        }
        assert_eq!(prev_upper, u64::MAX, "last bucket edge saturates at u64::MAX");
        // Every value lands in the bucket whose range contains it.
        for ns in [0, 1, 3, 4, 5, 7, 8, 1_000, 2_097_152, 3_000_000, u64::MAX] {
            let i = index_of(ns);
            assert!(LatencyHistogram::bucket_lower_ns(i) <= ns, "value {ns} below bucket {i}");
            assert!(
                ns < LatencyHistogram::bucket_upper_ns(i) || i == NUM_BUCKETS - 1,
                "value {ns} above bucket {i}"
            );
        }
    }

    #[test]
    fn sub_buckets_bound_percentile_error_at_25_percent() {
        // The regression this layout fixes: a put tail near 1.6 ms used
        // to report p99 = 2 097 152 ns (the full 2^21 bucket edge, 31%
        // high). Any constant-valued distribution must now report a p99
        // within 25% of the true value.
        for &true_ns in &[1_600_000u64, 2_000_000, 2_097_153, 12_345, 999] {
            let mut h = LatencyHistogram::new();
            for _ in 0..1000 {
                h.record(true_ns);
            }
            let p99 = h.p99_ns();
            assert!(p99 >= true_ns, "p99 {p99} under-reports {true_ns}");
            assert!(
                (p99 - true_ns) as f64 <= 0.25 * true_ns as f64,
                "p99 {p99} overshoots {true_ns} by more than 25%"
            );
        }
    }

    #[test]
    fn percentile_never_exceeds_observed_max() {
        let mut h = LatencyHistogram::new();
        h.record(2_097_153); // just past a major-bucket edge
        assert_eq!(h.percentile_ns(100.0), 2_097_153);
        assert_eq!(h.p99_ns(), 2_097_153);
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(100);
        b.record(10_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max_ns(), 10_000);
    }

    #[test]
    fn percentile_monotone() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(i * 17);
        }
        let p50 = h.percentile_ns(50.0);
        let p90 = h.percentile_ns(90.0);
        let p99 = h.percentile_ns(99.0);
        assert!(p50 <= p90 && p90 <= p99);
        assert!(h.p99_ns() <= h.p999_ns());
        assert_eq!(h.p50_ns(), p50);
        assert_eq!(h.p999_ns(), h.percentile_ns(99.9));
    }

    #[test]
    fn since_diffs_and_saturates() {
        let mut early = LatencyHistogram::new();
        early.record(100);
        early.record(100);
        let mut late = early.clone();
        late.record(100_000);
        let d = late.since(&early);
        assert_eq!(d.count(), 1);
        assert_eq!(d.sum_ns(), 100_000);
        // Snapshot taken across a reset: earlier counters exceed current.
        let fresh = LatencyHistogram::new();
        let d = fresh.since(&late);
        assert_eq!(d.count(), 0);
        assert_eq!(d.sum_ns(), 0);
        assert!(d.bucket_counts().iter().all(|&c| c == 0));
    }
}
