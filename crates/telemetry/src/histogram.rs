//! Log-bucketed latency histogram (power-of-two buckets, zero allocation
//! per sample).

/// Latency histogram with 64 power-of-two nanosecond buckets.
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    buckets: [u64; 64],
    count: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { buckets: [0; 64], count: 0, sum_ns: 0, max_ns: 0 }
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one latency sample.
    #[inline]
    pub fn record(&mut self, ns: u64) {
        let bucket = 64 - ns.leading_zeros().min(63) as usize - 1;
        // ns = 0 → bucket 0 via the min() clamp above mapping to index 0.
        self.buckets[if ns == 0 { 0 } else { bucket }] += 1;
        self.count += 1;
        self.sum_ns += ns;
        self.max_ns = self.max_ns.max(ns);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Raw bucket counts; bucket `i` covers `[2^i, 2^(i+1))` ns (bucket 0
    /// additionally absorbs zero-latency samples).
    pub fn bucket_counts(&self) -> &[u64; 64] {
        &self.buckets
    }

    /// Upper edge (exclusive) of bucket `i` in nanoseconds.
    pub fn bucket_upper_ns(i: usize) -> u64 {
        1u64 << (i + 1).min(63)
    }

    /// Approximate percentile (upper edge of the containing bucket).
    pub fn percentile_ns(&self, p: f64) -> u64 {
        assert!((0.0..=100.0).contains(&p));
        if self.count == 0 {
            return 0;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return 1u64 << (i + 1).min(63);
            }
        }
        self.max_ns
    }

    /// Median latency (upper bucket edge).
    pub fn p50_ns(&self) -> u64 {
        self.percentile_ns(50.0)
    }

    /// 99th-percentile latency (upper bucket edge).
    pub fn p99_ns(&self) -> u64 {
        self.percentile_ns(99.0)
    }

    /// 99.9th-percentile latency (upper bucket edge) — the tail that resize
    /// stalls dominate.
    pub fn p999_ns(&self) -> u64 {
        self.percentile_ns(99.9)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Bucket-wise difference `self - earlier`, saturating at zero so a
    /// snapshot taken across a reset yields zeros rather than wrapping.
    /// `max_ns` carries over from `self` (a maximum cannot be diffed).
    pub fn since(&self, earlier: &LatencyHistogram) -> LatencyHistogram {
        let mut buckets = [0u64; 64];
        for (i, b) in buckets.iter_mut().enumerate() {
            *b = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        LatencyHistogram {
            buckets,
            count: self.count.saturating_sub(earlier.count),
            sum_ns: self.sum_ns.saturating_sub(earlier.sum_ns),
            max_ns: self.max_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.percentile_ns(99.0), 0);
    }

    #[test]
    fn records_and_percentiles() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(1_000); // bucket ~2^9
        }
        h.record(1_000_000);
        assert_eq!(h.count(), 100);
        assert!(h.percentile_ns(50.0) < 5_000);
        assert!(h.percentile_ns(100.0) >= 1_000_000 / 2);
        assert_eq!(h.max_ns(), 1_000_000);
        assert!((h.mean_ns() - (99.0 * 1000.0 + 1e6) / 100.0).abs() < 1.0);
    }

    #[test]
    fn zero_latency_is_fine() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(1);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(100);
        b.record(10_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max_ns(), 10_000);
    }

    #[test]
    fn percentile_monotone() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(i * 17);
        }
        let p50 = h.percentile_ns(50.0);
        let p90 = h.percentile_ns(90.0);
        let p99 = h.percentile_ns(99.0);
        assert!(p50 <= p90 && p90 <= p99);
        assert!(h.p99_ns() <= h.p999_ns());
        assert_eq!(h.p50_ns(), p50);
        assert_eq!(h.p999_ns(), h.percentile_ns(99.9));
    }

    #[test]
    fn since_diffs_and_saturates() {
        let mut early = LatencyHistogram::new();
        early.record(100);
        early.record(100);
        let mut late = early.clone();
        late.record(100_000);
        let d = late.since(&early);
        assert_eq!(d.count(), 1);
        assert_eq!(d.sum_ns(), 100_000);
        // Snapshot taken across a reset: earlier counters exceed current.
        let fresh = LatencyHistogram::new();
        let d = fresh.since(&late);
        assert_eq!(d.count(), 0);
        assert_eq!(d.sum_ns(), 0);
        assert!(d.bucket_counts().iter().all(|&c| c == 0));
    }
}
