//! Virtual-clock span tracer. Each device command opens an op span; layers
//! below append stage events (directory lookup, cache hit/miss, flash
//! read/program, GC step, resize migration batch, queue wait) timed on the
//! *simulated* device clock. Completed spans land in a fixed-capacity ring
//! buffer that counts, rather than blocks on, overflow.

/// Where time went inside one device command.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// DRAM directory walk (no media time; counted for frequency).
    DirLookup,
    /// Index page served from the metadata cache.
    CacheHit,
    /// Index page absent from the metadata cache (a flash read follows).
    CacheMiss,
    /// NAND page read charged to the command itself.
    FlashRead,
    /// NAND page program charged to the command itself.
    FlashProgram,
    /// Media work performed under garbage collection (reads, programs,
    /// erases attributed to the GC run the command triggered).
    GcStep,
    /// Media work performed by an incremental resize migration batch.
    ResizeMigrateBatch,
    /// Time the command spent stalled behind the submission queue
    /// (housekeeping debt: deferred maintenance, proactive GC).
    QueueWait,
    /// Hot-object cache tier: value admitted after an index read.
    CacheAdmit,
    /// Hot-object cache tier: get served entirely from DRAM (no
    /// directory walk, no flash read).
    CacheHotHit,
    /// Hot-object cache tier: resident entry's fill version was
    /// superseded — dropped, get fell through to the index.
    CacheStale,
    /// Hot-object cache tier: entries displaced to stay under budget.
    CacheEvict,
}

impl Stage {
    /// All stages, in display order.
    pub const ALL: [Stage; 12] = [
        Stage::DirLookup,
        Stage::CacheHit,
        Stage::CacheMiss,
        Stage::FlashRead,
        Stage::FlashProgram,
        Stage::GcStep,
        Stage::ResizeMigrateBatch,
        Stage::QueueWait,
        Stage::CacheAdmit,
        Stage::CacheHotHit,
        Stage::CacheStale,
        Stage::CacheEvict,
    ];

    /// Stable snake_case name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Stage::DirLookup => "dir_lookup",
            Stage::CacheHit => "cache_hit",
            Stage::CacheMiss => "cache_miss",
            Stage::FlashRead => "flash_read",
            Stage::FlashProgram => "flash_program",
            Stage::GcStep => "gc_step",
            Stage::ResizeMigrateBatch => "resize_migrate_batch",
            Stage::QueueWait => "queue_wait",
            Stage::CacheAdmit => "cache_admit",
            Stage::CacheHotHit => "cache_hot_hit",
            Stage::CacheStale => "cache_stale",
            Stage::CacheEvict => "cache_evict",
        }
    }
}

/// One stage occurrence inside a span: `count` events totalling `dur_ns`
/// of simulated time (zero for pure-DRAM stages).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageEvent {
    pub stage: Stage,
    pub count: u32,
    pub dur_ns: u64,
}

/// Which device command a span describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    Put,
    Get,
    Delete,
    Exist,
    Maintenance,
}

impl OpKind {
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Put => "put",
            OpKind::Get => "get",
            OpKind::Delete => "delete",
            OpKind::Exist => "exist",
            OpKind::Maintenance => "maintenance",
        }
    }
}

/// One completed device command on the simulated clock.
#[derive(Clone, Debug)]
pub struct OpSpan {
    pub kind: OpKind,
    /// Shard the command executed on (0 for single-queue devices).
    pub shard: u32,
    pub submitted_ns: u64,
    pub completed_ns: u64,
    /// Flash reads the index lookup itself needed (the ≤1 invariant).
    pub lookup_flash_reads: u64,
    pub stages: Vec<StageEvent>,
}

impl OpSpan {
    pub fn latency_ns(&self) -> u64 {
        self.completed_ns.saturating_sub(self.submitted_ns)
    }

    /// Total simulated time attributed to stage events.
    pub fn stage_total_ns(&self) -> u64 {
        self.stages.iter().map(|e| e.dur_ns).sum()
    }
}

/// Fixed-capacity span ring. When full, the oldest span is overwritten and
/// the drop counter bumped — tracing never stalls the data path.
#[derive(Clone, Debug)]
pub struct TraceRing {
    spans: Vec<OpSpan>,
    next: usize,
    capacity: usize,
    pushed: u64,
    dropped: u64,
}

impl TraceRing {
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceRing {
            spans: Vec::with_capacity(capacity.min(4096)),
            next: 0,
            capacity,
            pushed: 0,
            dropped: 0,
        }
    }

    pub fn push(&mut self, span: OpSpan) {
        self.pushed += 1;
        if self.spans.len() < self.capacity {
            self.spans.push(span);
        } else {
            self.spans[self.next] = span;
            self.next = (self.next + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    pub fn len(&self) -> usize {
        self.spans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Spans ever pushed (retained + overwritten).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Spans overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained spans, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &OpSpan> {
        let (newer, older) = self.spans.split_at(self.next);
        older.iter().chain(newer.iter())
    }

    pub fn to_vec(&self) -> Vec<OpSpan> {
        self.iter().cloned().collect()
    }

    pub fn clear(&mut self) {
        self.spans.clear();
        self.next = 0;
        self.pushed = 0;
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64) -> OpSpan {
        OpSpan {
            kind: OpKind::Get,
            shard: 0,
            submitted_ns: id,
            completed_ns: id + 10,
            lookup_flash_reads: 1,
            stages: vec![StageEvent { stage: Stage::FlashRead, count: 1, dur_ns: 10 }],
        }
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut ring = TraceRing::with_capacity(3);
        for i in 0..5 {
            ring.push(span(i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.pushed(), 5);
        assert_eq!(ring.dropped(), 2);
        let order: Vec<u64> = ring.iter().map(|s| s.submitted_ns).collect();
        assert_eq!(order, vec![2, 3, 4]);
        assert_eq!(ring.to_vec().len(), 3);
    }

    #[test]
    fn ring_under_capacity_in_order() {
        let mut ring = TraceRing::with_capacity(8);
        ring.push(span(0));
        ring.push(span(1));
        assert_eq!(ring.dropped(), 0);
        let order: Vec<u64> = ring.iter().map(|s| s.submitted_ns).collect();
        assert_eq!(order, vec![0, 1]);
    }

    #[test]
    fn span_accounting() {
        let s = span(5);
        assert_eq!(s.latency_ns(), 10);
        assert_eq!(s.stage_total_ns(), 10);
        assert_eq!(s.kind.name(), "get");
        assert_eq!(Stage::ResizeMigrateBatch.name(), "resize_migrate_batch");
        assert_eq!(Stage::ALL.len(), 12);
        assert_eq!(Stage::CacheHotHit.name(), "cache_hot_hit");
    }
}
