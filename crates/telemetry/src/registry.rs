//! Named metric registry: monotonic counters, point-in-time gauges, and
//! log-bucketed latency histograms, with snapshot-and-diff plus JSON and
//! Prometheus text export. Hand-rolled serialization keeps the crate
//! dependency-free.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::histogram::LatencyHistogram;

/// Registry of named metrics. Names are free-form; the Prometheus exporter
/// sanitizes them to `[a-zA-Z0-9_:]`.
#[derive(Clone, Debug, Default)]
pub struct MetricRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, LatencyHistogram>,
}

impl MetricRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to the named monotonic counter, creating it at zero.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += delta;
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Set the named gauge to `value`.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        if let Some(g) = self.gauges.get_mut(name) {
            *g = value;
        } else {
            self.gauges.insert(name.to_string(), value);
        }
    }

    /// Record one sample into the named histogram, creating it if needed.
    pub fn histogram_record(&mut self, name: &str, ns: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.record(ns);
        } else {
            let mut h = LatencyHistogram::new();
            h.record(ns);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Current counter value (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    pub fn histogram(&self, name: &str) -> Option<&LatencyHistogram> {
        self.histograms.get(name)
    }

    /// Point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricSnapshot {
        MetricSnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
        }
    }
}

/// Immutable copy of a registry, diffable against an earlier snapshot and
/// exportable as JSON or Prometheus text.
#[derive(Clone, Debug, Default)]
pub struct MetricSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, LatencyHistogram>,
}

impl MetricSnapshot {
    /// Counter value in this snapshot (zero if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    pub fn histogram(&self, name: &str) -> Option<&LatencyHistogram> {
        self.histograms.get(name)
    }

    /// Difference `self - earlier`: counters and histogram buckets subtract
    /// (saturating, so diffing across a reset yields zeros rather than
    /// wrapping), gauges keep their current value. Metrics absent from
    /// `earlier` pass through unchanged.
    pub fn since(&self, earlier: &MetricSnapshot) -> MetricSnapshot {
        let mut counters = BTreeMap::new();
        for (name, &v) in &self.counters {
            counters.insert(name.clone(), v.saturating_sub(earlier.counter(name)));
        }
        let mut histograms = BTreeMap::new();
        for (name, h) in &self.histograms {
            let d = match earlier.histograms.get(name) {
                Some(e) => h.since(e),
                None => h.clone(),
            };
            histograms.insert(name.clone(), d);
        }
        MetricSnapshot { counters, gauges: self.gauges.clone(), histograms }
    }

    /// Serialize to a JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {name: {count,
    /// sum_ns, max_ns, mean_ns, p50_ns, p99_ns, p999_ns}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (name, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\": {}", escape_json(name), v);
        }
        out.push_str("\n  },\n  \"gauges\": {");
        first = true;
        for (name, v) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\": {}", escape_json(name), fmt_f64(*v));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        first = true;
        for (name, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    \"{}\": {{\"count\": {}, \"sum_ns\": {}, \"max_ns\": {}, \
                 \"mean_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}}}",
                escape_json(name),
                h.count(),
                h.sum_ns(),
                h.max_ns(),
                fmt_f64(h.mean_ns()),
                h.p50_ns(),
                h.p99_ns(),
                h.p999_ns()
            );
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Serialize in the Prometheus text exposition format. Counters get a
    /// `_total` suffix; histograms expose cumulative `_bucket{le=...}`
    /// lines (collapsed to the non-empty power-of-two buckets) plus
    /// `_sum`/`_count`.
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = sanitize_prom(name);
            let _ = writeln!(out, "# TYPE {n}_total counter");
            let _ = writeln!(out, "{n}_total {v}");
        }
        for (name, v) in &self.gauges {
            let n = sanitize_prom(name);
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {}", fmt_f64(*v));
        }
        for (name, h) in &self.histograms {
            let n = sanitize_prom(name);
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cumulative = 0u64;
            for (i, &c) in h.bucket_counts().iter().enumerate() {
                if c == 0 {
                    continue;
                }
                cumulative += c;
                let le = LatencyHistogram::bucket_upper_ns(i);
                let _ = writeln!(out, "{n}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count());
            let _ = writeln!(out, "{n}_sum {}", h.sum_ns());
            let _ = writeln!(out, "{n}_count {}", h.count());
        }
        out
    }
}

/// Escape a string for embedding in a JSON string literal.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format an f64 so the output is valid JSON (no NaN/inf literals).
pub(crate) fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{:.1}", v)
        } else {
            format!("{}", v)
        }
    } else {
        "0.0".to_string()
    }
}

fn sanitize_prom(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() || c == ':' { c } else { '_' }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms() {
        let mut r = MetricRegistry::new();
        r.counter_add("ops", 2);
        r.counter_add("ops", 3);
        r.gauge_set("depth", 4.0);
        r.gauge_set("depth", 7.5);
        r.histogram_record("lat", 1_000);
        r.histogram_record("lat", 2_000);
        assert_eq!(r.counter("ops"), 5);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.gauge("depth"), Some(7.5));
        assert_eq!(r.histogram("lat").unwrap().count(), 2);
    }

    #[test]
    fn snapshot_diff() {
        let mut r = MetricRegistry::new();
        r.counter_add("ops", 5);
        r.histogram_record("lat", 100);
        let early = r.snapshot();
        r.counter_add("ops", 7);
        r.histogram_record("lat", 100);
        r.histogram_record("lat", 100);
        r.gauge_set("depth", 3.0);
        let d = r.snapshot().since(&early);
        assert_eq!(d.counter("ops"), 7);
        assert_eq!(d.histogram("lat").unwrap().count(), 2);
        assert_eq!(d.gauge("depth"), Some(3.0));
        // Diff against a later snapshot saturates instead of wrapping.
        let rewound = early.since(&r.snapshot());
        assert_eq!(rewound.counter("ops"), 0);
    }

    #[test]
    fn json_export_is_wellformed() {
        let mut r = MetricRegistry::new();
        r.counter_add("nand_page_reads", 12);
        r.gauge_set("shard0_queue_depth", 2.0);
        r.histogram_record("get_latency_ns", 90_000);
        let json = r.snapshot().to_json();
        assert!(json.contains("\"nand_page_reads\": 12"));
        assert!(json.contains("\"shard0_queue_depth\": 2.0"));
        assert!(json.contains("\"get_latency_ns\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn prometheus_export() {
        let mut r = MetricRegistry::new();
        r.counter_add("ops", 3);
        r.gauge_set("occupancy", 0.5);
        r.histogram_record("lat", 1_000);
        let text = r.snapshot().to_prometheus_text();
        assert!(text.contains("# TYPE ops_total counter"));
        assert!(text.contains("ops_total 3"));
        assert!(text.contains("occupancy 0.5"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("lat_count 1"));
    }

    #[test]
    fn prometheus_sanitizes_names() {
        let mut r = MetricRegistry::new();
        r.counter_add("weird name-with.bits", 1);
        let text = r.snapshot().to_prometheus_text();
        assert!(text.contains("weird_name_with_bits_total 1"));
    }
}
