//! The handle the rest of the stack holds. A disabled sink is a `None` —
//! every recording call is one branch and returns. An enabled sink shares
//! one mutex-guarded state (registry + trace ring + invariant distribution)
//! across clones, so sharded engines report into a single place.
//!
//! # Hot-path buffering
//!
//! The two recording calls that sit on per-command paths — [`record_op`]
//! (one per host command) and [`counter_add`] (one per media op) — do
//! *not* take the shared mutex. They stage into a thread-local
//! [`OpBuffer`] bound to the sink's state, which drains into the shared
//! registry when it reaches [`OP_BUFFER_CAPACITY`] staged events, when
//! the same thread calls any read or non-buffered write API, or when the
//! thread exits (the buffer's `Drop` flushes). Consequence: a reader on
//! thread A sees every event thread A recorded (reads flush the local
//! buffer first) and every event recorded by threads that have flushed
//! or exited; events still staged on other live threads lag by at most
//! one buffer. Benches join their workers before reporting, and audits
//! run between command batches, so both observe complete totals.
//!
//! [`record_op`]: TelemetrySink::record_op
//! [`counter_add`]: TelemetrySink::counter_add

use std::cell::RefCell;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::registry::{MetricRegistry, MetricSnapshot};
use crate::trace::{OpSpan, TraceRing};
use crate::views::{Attribution, ReadsPerLookup};

/// Staged events per thread before the buffer drains into the shared
/// state. 64 commands of lag bounds both memory and staleness while
/// cutting mutex acquisitions by ~64× on the hot path.
pub const OP_BUFFER_CAPACITY: usize = 64;

/// One buffered [`TelemetrySink::record_op`] call. Counter and histogram
/// names are `'static` so staging never allocates for them; the span's
/// stage vector is the only owned payload (and was built regardless).
struct BufferedOp {
    span: OpSpan,
    op_counter: &'static str,
    latency: Option<(&'static str, u64)>,
    lookup_reads: Option<u64>,
}

/// Per-thread staging area, bound to one sink state. Counter deltas and
/// gauge values coalesce in place (names allocate once per thread), so
/// steady-state staging is allocation-free.
struct OpBuffer {
    state: Arc<Mutex<TelemetryState>>,
    ops: Vec<BufferedOp>,
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    /// Events staged since the last drain (ops + counter calls).
    staged: usize,
}

impl OpBuffer {
    fn new(state: Arc<Mutex<TelemetryState>>) -> Self {
        OpBuffer {
            state,
            ops: Vec::with_capacity(OP_BUFFER_CAPACITY),
            counters: Vec::new(),
            gauges: Vec::new(),
            staged: 0,
        }
    }

    fn flush(&mut self) {
        if self.staged == 0 && self.gauges.is_empty() {
            return;
        }
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        for op in self.ops.drain(..) {
            s.registry.counter_add(op.op_counter, 1);
            if let Some((name, ns)) = op.latency {
                s.registry.histogram_record(name, ns);
            }
            if let Some(reads) = op.lookup_reads {
                s.reads_per_lookup.note(reads);
            }
            s.trace.push(op.span);
        }
        for (name, delta) in &mut self.counters {
            if *delta > 0 {
                s.registry.counter_add(name, *delta);
                *delta = 0;
            }
        }
        // Gauges are last-write-wins; applying the latest staged value
        // at drain time matches unbuffered semantics between drains.
        for (name, value) in self.gauges.drain(..) {
            s.registry.gauge_set(&name, value);
        }
        self.staged = 0;
    }
}

impl Drop for OpBuffer {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    /// The current thread's staging buffer (bound to whichever enabled
    /// sink state this thread last recorded into; rebinding flushes).
    static OP_BUFFER: RefCell<Option<OpBuffer>> = const { RefCell::new(None) };
}

/// Everything an enabled sink accumulates.
#[derive(Debug)]
pub struct TelemetryState {
    pub registry: MetricRegistry,
    pub trace: TraceRing,
    pub reads_per_lookup: ReadsPerLookup,
}

/// Cloneable telemetry handle. [`TelemetrySink::disabled`] (the default)
/// is a no-op: recording costs one branch. Clones of an enabled sink share
/// the same state.
#[derive(Clone, Debug, Default)]
pub struct TelemetrySink {
    inner: Option<Arc<Mutex<TelemetryState>>>,
}

/// Default span-ring capacity for [`TelemetrySink::enabled`].
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

impl TelemetrySink {
    /// The no-op sink: nothing is recorded, nothing is allocated.
    pub fn disabled() -> Self {
        TelemetrySink { inner: None }
    }

    /// An enabled sink with the default trace-ring capacity.
    pub fn enabled() -> Self {
        Self::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// An enabled sink retaining at most `capacity` spans.
    pub fn with_trace_capacity(capacity: usize) -> Self {
        TelemetrySink {
            inner: Some(Arc::new(Mutex::new(TelemetryState {
                registry: MetricRegistry::new(),
                trace: TraceRing::with_capacity(capacity),
                reads_per_lookup: ReadsPerLookup::default(),
            }))),
        }
    }

    /// Whether recording calls do anything. Layers use this to skip the
    /// work of *building* events, not just recording them.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Drain the *current thread's* staging buffer if it is bound to this
    /// sink's state. Every read and non-buffered write path goes through
    /// here first, so a thread always observes its own recordings.
    fn flush_local(&self) {
        let Some(state) = &self.inner else { return };
        let _ = OP_BUFFER.try_with(|cell| {
            if let Ok(mut slot) = cell.try_borrow_mut() {
                if let Some(buf) = slot.as_mut() {
                    if Arc::ptr_eq(&buf.state, state) {
                        buf.flush();
                    }
                }
            }
        });
    }

    /// Run `f` against this thread's buffer bound to `state`, rebinding
    /// (and thereby flushing) a buffer that belongs to a different sink.
    /// Falls back to `direct` when thread-local storage is unavailable
    /// (thread teardown) or the buffer is already borrowed.
    fn with_buffer(
        state: &Arc<Mutex<TelemetryState>>,
        f: impl FnOnce(&mut OpBuffer),
        direct: impl FnOnce(&mut TelemetryState),
    ) {
        let staged = OP_BUFFER.try_with(|cell| match cell.try_borrow_mut() {
            Ok(mut slot) => {
                let rebind = match slot.as_ref() {
                    Some(buf) => !Arc::ptr_eq(&buf.state, state),
                    None => true,
                };
                if rebind {
                    // Dropping the old buffer flushes it into its own
                    // (different) sink state.
                    *slot = Some(OpBuffer::new(Arc::clone(state)));
                }
                let buf = slot.as_mut().expect("buffer bound above");
                f(buf);
                if buf.staged >= OP_BUFFER_CAPACITY {
                    buf.flush();
                }
                true
            }
            Err(_) => false,
        });
        if !matches!(staged, Ok(true)) {
            let mut s = state.lock().unwrap_or_else(|e| e.into_inner());
            direct(&mut s);
        }
    }

    fn lock(&self) -> Option<MutexGuard<'_, TelemetryState>> {
        self.flush_local();
        self.inner.as_ref().map(|m| m.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Add to a named counter. Hot path: stages into the thread-local
    /// buffer (deltas coalesce per name) instead of taking the mutex.
    pub fn counter_add(&self, name: &str, delta: u64) {
        let Some(state) = &self.inner else { return };
        Self::with_buffer(
            state,
            |buf| {
                buf.staged += 1;
                match buf.counters.iter_mut().find(|(n, _)| n == name) {
                    Some((_, d)) => *d += delta,
                    None => buf.counters.push((name.to_owned(), delta)),
                }
            },
            |s| s.registry.counter_add(name, delta),
        );
    }

    pub fn gauge_set(&self, name: &str, value: f64) {
        if let Some(mut s) = self.lock() {
            s.registry.gauge_set(name, value);
        }
    }

    pub fn histogram_record(&self, name: &str, ns: u64) {
        if let Some(mut s) = self.lock() {
            s.registry.histogram_record(name, ns);
        }
    }

    /// Push a completed op span into the trace ring.
    pub fn record_span(&self, span: OpSpan) {
        if let Some(mut s) = self.lock() {
            s.trace.push(span);
        }
    }

    /// Record one completed command: its span, per-op counter, optional
    /// latency histogram sample, optional lookup-read observation, and
    /// any gauge refreshes. Device hot paths use this instead of six
    /// separate recording calls. The whole record stages into the
    /// thread-local buffer — no shared mutex until the buffer drains —
    /// so per-op observability cost is a few thread-local writes.
    pub fn record_op(
        &self,
        span: OpSpan,
        op_counter: &'static str,
        latency: Option<(&'static str, u64)>,
        lookup_reads: Option<u64>,
        gauges: &[(&str, f64)],
    ) {
        let Some(state) = &self.inner else { return };
        // `span` shuttles through an Option so exactly one of the two
        // paths (staged / direct) takes it by value.
        let mut span = Some(span);
        let staged = OP_BUFFER.try_with(|cell| match cell.try_borrow_mut() {
            Ok(mut slot) => {
                let rebind = match slot.as_ref() {
                    Some(buf) => !Arc::ptr_eq(&buf.state, state),
                    None => true,
                };
                if rebind {
                    *slot = Some(OpBuffer::new(Arc::clone(state)));
                }
                let buf = slot.as_mut().expect("buffer bound above");
                buf.staged += 1;
                buf.ops.push(BufferedOp {
                    span: span.take().expect("staged path runs once"),
                    op_counter,
                    latency,
                    lookup_reads,
                });
                for &(name, value) in gauges {
                    match buf.gauges.iter_mut().find(|(n, _)| n == name) {
                        Some((_, v)) => *v = value,
                        None => buf.gauges.push((name.to_owned(), value)),
                    }
                }
                if buf.staged >= OP_BUFFER_CAPACITY {
                    buf.flush();
                }
                true
            }
            Err(_) => false,
        });
        if !matches!(staged, Ok(true)) {
            let mut s = state.lock().unwrap_or_else(|e| e.into_inner());
            s.registry.counter_add(op_counter, 1);
            if let Some((name, ns)) = latency {
                s.registry.histogram_record(name, ns);
            }
            if let Some(reads) = lookup_reads {
                s.reads_per_lookup.note(reads);
            }
            for &(name, value) in gauges {
                s.registry.gauge_set(name, value);
            }
            s.trace.push(span.take().expect("direct path runs once"));
        }
    }

    /// Feed one observed lookup into the ≤1-flash-read distribution.
    pub fn note_lookup_reads(&self, reads: u64) {
        if let Some(mut s) = self.lock() {
            s.reads_per_lookup.note(reads);
        }
    }

    /// Point-in-time copy of the registry (None when disabled).
    pub fn snapshot(&self) -> Option<MetricSnapshot> {
        self.lock().map(|s| s.registry.snapshot())
    }

    /// Copy of the live reads-per-lookup distribution (None when disabled).
    pub fn reads_per_lookup(&self) -> Option<ReadsPerLookup> {
        self.lock().map(|s| s.reads_per_lookup)
    }

    /// Retained spans, oldest first (empty when disabled).
    pub fn spans(&self) -> Vec<OpSpan> {
        self.lock().map(|s| s.trace.to_vec()).unwrap_or_default()
    }

    /// Spans overwritten because the ring was full.
    pub fn trace_dropped(&self) -> u64 {
        self.lock().map(|s| s.trace.dropped()).unwrap_or(0)
    }

    /// Per-stage attribution over the currently retained spans.
    pub fn attribution(&self) -> Attribution {
        self.lock().map(|s| Attribution::from_spans(s.trace.iter())).unwrap_or_default()
    }

    /// Drop all retained spans (the registry is left intact).
    pub fn clear_trace(&self) {
        if let Some(mut s) = self.lock() {
            s.trace.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{OpKind, Stage, StageEvent};

    #[test]
    fn disabled_sink_is_inert() {
        let sink = TelemetrySink::disabled();
        assert!(!sink.is_enabled());
        sink.counter_add("ops", 1);
        sink.note_lookup_reads(5);
        assert!(sink.snapshot().is_none());
        assert!(sink.reads_per_lookup().is_none());
        assert!(sink.spans().is_empty());
        assert_eq!(sink.attribution().ops, 0);
        assert!(!TelemetrySink::default().is_enabled());
    }

    #[test]
    fn clones_share_state() {
        let sink = TelemetrySink::with_trace_capacity(8);
        let other = sink.clone();
        other.counter_add("ops", 3);
        sink.counter_add("ops", 2);
        other.gauge_set("depth", 1.5);
        other.histogram_record("lat", 500);
        assert_eq!(sink.snapshot().unwrap().counter("ops"), 5);
        assert_eq!(sink.snapshot().unwrap().gauge("depth"), Some(1.5));
        assert_eq!(sink.snapshot().unwrap().histogram("lat").unwrap().count(), 1);
    }

    fn put_span(ns: u64) -> OpSpan {
        OpSpan {
            kind: OpKind::Put,
            shard: 0,
            submitted_ns: ns,
            completed_ns: ns + 10,
            lookup_flash_reads: 0,
            stages: Vec::new(),
        }
    }

    #[test]
    fn same_thread_reads_see_buffered_events() {
        let sink = TelemetrySink::enabled();
        // Fewer events than the buffer capacity: nothing has drained on
        // its own, but a same-thread read must still see everything.
        for i in 0..5 {
            sink.record_op(put_span(i), "ops", Some(("lat", 10)), Some(1), &[("g", i as f64)]);
        }
        sink.counter_add("media", 7);
        let snap = sink.snapshot().unwrap();
        assert_eq!(snap.counter("ops"), 5);
        assert_eq!(snap.counter("media"), 7);
        assert_eq!(snap.gauge("g"), Some(4.0));
        assert_eq!(snap.histogram("lat").unwrap().count(), 5);
        assert_eq!(sink.spans().len(), 5);
        assert_eq!(sink.reads_per_lookup().unwrap().lookups, 5);
    }

    #[test]
    fn buffer_drains_at_capacity_and_on_thread_exit() {
        let sink = TelemetrySink::enabled();
        let worker = sink.clone();
        std::thread::spawn(move || {
            for i in 0..(OP_BUFFER_CAPACITY as u64 + 3) {
                worker.record_op(put_span(i), "ops", None, None, &[]);
            }
            // The first OP_BUFFER_CAPACITY staged events drained at the
            // capacity trigger; the remaining 3 drain when this thread
            // exits and the buffer drops.
        })
        .join()
        .unwrap();
        assert_eq!(sink.snapshot().unwrap().counter("ops"), OP_BUFFER_CAPACITY as u64 + 3);
        assert_eq!(sink.spans().len(), OP_BUFFER_CAPACITY + 3);
    }

    #[test]
    fn rebinding_to_another_sink_flushes_the_first() {
        let a = TelemetrySink::enabled();
        let b = TelemetrySink::enabled();
        a.record_op(put_span(0), "ops", None, None, &[]);
        // Recording into a different sink rebinds this thread's buffer,
        // flushing the staged event into `a` en route.
        b.record_op(put_span(1), "ops", None, None, &[]);
        // Read `a` through a clone WITHOUT touching this thread's buffer
        // binding (which now belongs to `b`).
        let a2 = a.clone();
        assert_eq!(a2.snapshot().unwrap().counter("ops"), 1);
        assert_eq!(b.snapshot().unwrap().counter("ops"), 1);
    }

    #[test]
    fn spans_and_attribution_flow() {
        let sink = TelemetrySink::enabled();
        sink.record_span(OpSpan {
            kind: OpKind::Put,
            shard: 2,
            submitted_ns: 0,
            completed_ns: 100,
            lookup_flash_reads: 0,
            stages: vec![StageEvent { stage: Stage::FlashProgram, count: 1, dur_ns: 100 }],
        });
        sink.note_lookup_reads(1);
        assert_eq!(sink.spans().len(), 1);
        assert_eq!(sink.trace_dropped(), 0);
        let a = sink.attribution();
        assert_eq!(a.row(Stage::FlashProgram).total_ns, 100);
        assert!(sink.reads_per_lookup().unwrap().invariant_ok());
        sink.clear_trace();
        assert!(sink.spans().is_empty());
    }
}
