//! The handle the rest of the stack holds. A disabled sink is a `None` —
//! every recording call is one branch and returns. An enabled sink shares
//! one mutex-guarded state (registry + trace ring + invariant distribution)
//! across clones, so sharded engines report into a single place.

use std::sync::{Arc, Mutex, MutexGuard};

use crate::registry::{MetricRegistry, MetricSnapshot};
use crate::trace::{OpSpan, TraceRing};
use crate::views::{Attribution, ReadsPerLookup};

/// Everything an enabled sink accumulates.
#[derive(Debug)]
pub struct TelemetryState {
    pub registry: MetricRegistry,
    pub trace: TraceRing,
    pub reads_per_lookup: ReadsPerLookup,
}

/// Cloneable telemetry handle. [`TelemetrySink::disabled`] (the default)
/// is a no-op: recording costs one branch. Clones of an enabled sink share
/// the same state.
#[derive(Clone, Debug, Default)]
pub struct TelemetrySink {
    inner: Option<Arc<Mutex<TelemetryState>>>,
}

/// Default span-ring capacity for [`TelemetrySink::enabled`].
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

impl TelemetrySink {
    /// The no-op sink: nothing is recorded, nothing is allocated.
    pub fn disabled() -> Self {
        TelemetrySink { inner: None }
    }

    /// An enabled sink with the default trace-ring capacity.
    pub fn enabled() -> Self {
        Self::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// An enabled sink retaining at most `capacity` spans.
    pub fn with_trace_capacity(capacity: usize) -> Self {
        TelemetrySink {
            inner: Some(Arc::new(Mutex::new(TelemetryState {
                registry: MetricRegistry::new(),
                trace: TraceRing::with_capacity(capacity),
                reads_per_lookup: ReadsPerLookup::default(),
            }))),
        }
    }

    /// Whether recording calls do anything. Layers use this to skip the
    /// work of *building* events, not just recording them.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn lock(&self) -> Option<MutexGuard<'_, TelemetryState>> {
        self.inner.as_ref().map(|m| m.lock().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn counter_add(&self, name: &str, delta: u64) {
        if let Some(mut s) = self.lock() {
            s.registry.counter_add(name, delta);
        }
    }

    pub fn gauge_set(&self, name: &str, value: f64) {
        if let Some(mut s) = self.lock() {
            s.registry.gauge_set(name, value);
        }
    }

    pub fn histogram_record(&self, name: &str, ns: u64) {
        if let Some(mut s) = self.lock() {
            s.registry.histogram_record(name, ns);
        }
    }

    /// Push a completed op span into the trace ring.
    pub fn record_span(&self, span: OpSpan) {
        if let Some(mut s) = self.lock() {
            s.trace.push(span);
        }
    }

    /// Record one completed command under a single lock acquisition: its
    /// span, per-op counter, optional latency histogram sample, optional
    /// lookup-read observation, and any gauge refreshes. Device hot paths
    /// use this instead of six separate recording calls — the mutex, not
    /// the map updates, dominates per-op telemetry cost.
    pub fn record_op(
        &self,
        span: OpSpan,
        op_counter: &str,
        latency: Option<(&str, u64)>,
        lookup_reads: Option<u64>,
        gauges: &[(&str, f64)],
    ) {
        let Some(mut s) = self.lock() else { return };
        s.registry.counter_add(op_counter, 1);
        if let Some((name, ns)) = latency {
            s.registry.histogram_record(name, ns);
        }
        if let Some(reads) = lookup_reads {
            s.reads_per_lookup.note(reads);
        }
        for &(name, value) in gauges {
            s.registry.gauge_set(name, value);
        }
        s.trace.push(span);
    }

    /// Feed one observed lookup into the ≤1-flash-read distribution.
    pub fn note_lookup_reads(&self, reads: u64) {
        if let Some(mut s) = self.lock() {
            s.reads_per_lookup.note(reads);
        }
    }

    /// Point-in-time copy of the registry (None when disabled).
    pub fn snapshot(&self) -> Option<MetricSnapshot> {
        self.lock().map(|s| s.registry.snapshot())
    }

    /// Copy of the live reads-per-lookup distribution (None when disabled).
    pub fn reads_per_lookup(&self) -> Option<ReadsPerLookup> {
        self.lock().map(|s| s.reads_per_lookup)
    }

    /// Retained spans, oldest first (empty when disabled).
    pub fn spans(&self) -> Vec<OpSpan> {
        self.lock().map(|s| s.trace.to_vec()).unwrap_or_default()
    }

    /// Spans overwritten because the ring was full.
    pub fn trace_dropped(&self) -> u64 {
        self.lock().map(|s| s.trace.dropped()).unwrap_or(0)
    }

    /// Per-stage attribution over the currently retained spans.
    pub fn attribution(&self) -> Attribution {
        self.lock().map(|s| Attribution::from_spans(s.trace.iter())).unwrap_or_default()
    }

    /// Drop all retained spans (the registry is left intact).
    pub fn clear_trace(&self) {
        if let Some(mut s) = self.lock() {
            s.trace.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{OpKind, Stage, StageEvent};

    #[test]
    fn disabled_sink_is_inert() {
        let sink = TelemetrySink::disabled();
        assert!(!sink.is_enabled());
        sink.counter_add("ops", 1);
        sink.note_lookup_reads(5);
        assert!(sink.snapshot().is_none());
        assert!(sink.reads_per_lookup().is_none());
        assert!(sink.spans().is_empty());
        assert_eq!(sink.attribution().ops, 0);
        assert!(!TelemetrySink::default().is_enabled());
    }

    #[test]
    fn clones_share_state() {
        let sink = TelemetrySink::with_trace_capacity(8);
        let other = sink.clone();
        other.counter_add("ops", 3);
        sink.counter_add("ops", 2);
        other.gauge_set("depth", 1.5);
        other.histogram_record("lat", 500);
        assert_eq!(sink.snapshot().unwrap().counter("ops"), 5);
        assert_eq!(sink.snapshot().unwrap().gauge("depth"), Some(1.5));
        assert_eq!(sink.snapshot().unwrap().histogram("lat").unwrap().count(), 1);
    }

    #[test]
    fn spans_and_attribution_flow() {
        let sink = TelemetrySink::enabled();
        sink.record_span(OpSpan {
            kind: OpKind::Put,
            shard: 2,
            submitted_ns: 0,
            completed_ns: 100,
            lookup_flash_reads: 0,
            stages: vec![StageEvent { stage: Stage::FlashProgram, count: 1, dur_ns: 100 }],
        });
        sink.note_lookup_reads(1);
        assert_eq!(sink.spans().len(), 1);
        assert_eq!(sink.trace_dropped(), 0);
        let a = sink.attribution();
        assert_eq!(a.row(Stage::FlashProgram).total_ns, 100);
        assert!(sink.reads_per_lookup().unwrap().invariant_ok());
        sink.clear_trace();
        assert!(sink.spans().is_empty());
    }
}
