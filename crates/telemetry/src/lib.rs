//! Observability for the RHIK stack: a metric registry, a virtual-clock
//! span tracer, and derived attribution views — with zero external
//! dependencies and near-zero overhead when disabled.
//!
//! Three layers:
//!
//! * [`MetricRegistry`] — named monotonic counters, gauges, and
//!   log-bucketed [`LatencyHistogram`]s, with [`MetricSnapshot`] for
//!   snapshot-and-diff plus JSON and Prometheus text export.
//! * [`TraceRing`] — per-command [`OpSpan`]s carrying [`StageEvent`]s
//!   timed on the *simulated* device clock, in a fixed-capacity ring with
//!   drop counting.
//! * [`Attribution`] / [`ReadsPerLookup`] — derived views: where device
//!   time went per stage, and the flash-reads-per-lookup distribution that
//!   checks RHIK's ≤1-read invariant on live traffic (Fig. 5b), including
//!   mid-resize.
//!
//! The stack holds a [`TelemetrySink`]: a cloneable handle that defaults
//! to a no-op, so the hot path pays one branch when telemetry is off.

mod histogram;
mod registry;
mod sink;
mod trace;
mod views;

pub use histogram::LatencyHistogram;
pub use registry::{MetricRegistry, MetricSnapshot};
pub use sink::{TelemetrySink, TelemetryState, DEFAULT_TRACE_CAPACITY};
pub use trace::{OpKind, OpSpan, Stage, StageEvent, TraceRing};
pub use views::{Attribution, ReadsPerLookup, StageRow};
