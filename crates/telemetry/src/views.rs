//! Derived views over the raw trace: per-stage latency attribution and the
//! flash-reads-per-lookup distribution that checks RHIK's ≤1-read
//! invariant (Fig. 5b) on live traffic, including mid-resize.

use std::fmt::Write as _;

use crate::registry::{escape_json, fmt_f64};
use crate::trace::{OpSpan, Stage};

/// Aggregate for one stage across a set of spans.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageRow {
    pub events: u64,
    pub total_ns: u64,
}

impl StageRow {
    pub fn mean_ns(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.events as f64
        }
    }
}

/// Per-stage latency attribution over a set of spans: where simulated
/// device time went, command by command.
#[derive(Clone, Debug, Default)]
pub struct Attribution {
    rows: [StageRow; Stage::ALL.len()],
    /// Spans aggregated.
    pub ops: u64,
    /// Total simulated time across all stage events.
    pub total_stage_ns: u64,
}

impl Attribution {
    pub fn from_spans<'a>(spans: impl IntoIterator<Item = &'a OpSpan>) -> Self {
        let mut a = Attribution::default();
        for span in spans {
            a.ops += 1;
            for ev in &span.stages {
                let row = &mut a.rows[ev.stage as usize];
                row.events += ev.count as u64;
                row.total_ns += ev.dur_ns;
                a.total_stage_ns += ev.dur_ns;
            }
        }
        a
    }

    pub fn row(&self, stage: Stage) -> StageRow {
        self.rows[stage as usize]
    }

    /// Share of total attributed time spent in `stage`, in percent.
    pub fn share_pct(&self, stage: Stage) -> f64 {
        if self.total_stage_ns == 0 {
            0.0
        } else {
            100.0 * self.row(stage).total_ns as f64 / self.total_stage_ns as f64
        }
    }

    /// Stages that actually occurred (event count > 0).
    pub fn distinct_stages(&self) -> usize {
        self.rows.iter().filter(|r| r.events > 0).count()
    }

    /// JSON object keyed by stage name:
    /// `{"flash_read": {"events": N, "total_ns": N, "mean_ns": F,
    /// "share_pct": F}, ...}` (only stages that occurred).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        for stage in Stage::ALL {
            let row = self.row(stage);
            if row.events == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n  \"{}\": {{\"events\": {}, \"total_ns\": {}, \"mean_ns\": {}, \
                 \"share_pct\": {}}}",
                escape_json(stage.name()),
                row.events,
                row.total_ns,
                fmt_f64(row.mean_ns()),
                fmt_f64(self.share_pct(stage))
            );
        }
        out.push_str("\n}");
        out
    }
}

/// Distribution of flash reads needed per index lookup, observed at the
/// device layer. RHIK's headline guarantee is that the maximum stays ≤ 1
/// — including while a resize migration is in flight.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReadsPerLookup {
    /// `histo[n]` = lookups that needed exactly `n` flash reads
    /// (clamped at 15+).
    pub histo: [u64; 16],
    pub lookups: u64,
    pub max: u64,
}

impl ReadsPerLookup {
    pub fn note(&mut self, reads: u64) {
        self.histo[reads.min(15) as usize] += 1;
        self.lookups += 1;
        self.max = self.max.max(reads);
    }

    /// Does the live trace uphold the ≤1-flash-read-per-lookup invariant?
    pub fn invariant_ok(&self) -> bool {
        self.max <= 1
    }

    /// Percentage of lookups that needed at most `n` flash reads.
    pub fn pct_within(&self, n: u64) -> f64 {
        if self.lookups == 0 {
            return 100.0;
        }
        let within: u64 = self.histo.iter().take(n as usize + 1).sum();
        100.0 * within as f64 / self.lookups as f64
    }

    pub fn merge(&mut self, other: &ReadsPerLookup) {
        for (a, b) in self.histo.iter_mut().zip(other.histo.iter()) {
            *a += b;
        }
        self.lookups += other.lookups;
        self.max = self.max.max(other.max);
    }

    pub fn to_json(&self) -> String {
        let top = (0..16).rev().find(|&i| self.histo[i] > 0).unwrap_or(0);
        let mut out = String::from("{\"histo\": [");
        for (i, c) in self.histo.iter().take(top + 1).enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{c}");
        }
        let _ = write!(
            out,
            "], \"lookups\": {}, \"max\": {}, \"pct_within_1\": {}, \"invariant_ok\": {}}}",
            self.lookups,
            self.max,
            fmt_f64(self.pct_within(1)),
            self.invariant_ok()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{OpKind, StageEvent};

    fn span(stages: Vec<StageEvent>) -> OpSpan {
        OpSpan {
            kind: OpKind::Get,
            shard: 0,
            submitted_ns: 0,
            completed_ns: 100,
            lookup_flash_reads: 1,
            stages,
        }
    }

    #[test]
    fn attribution_sums_and_shares() {
        let spans = vec![
            span(vec![
                StageEvent { stage: Stage::FlashRead, count: 1, dur_ns: 75 },
                StageEvent { stage: Stage::CacheMiss, count: 1, dur_ns: 0 },
            ]),
            span(vec![StageEvent { stage: Stage::FlashRead, count: 1, dur_ns: 25 }]),
        ];
        let a = Attribution::from_spans(&spans);
        assert_eq!(a.ops, 2);
        assert_eq!(a.row(Stage::FlashRead).events, 2);
        assert_eq!(a.row(Stage::FlashRead).total_ns, 100);
        assert_eq!(a.row(Stage::FlashRead).mean_ns(), 50.0);
        assert!((a.share_pct(Stage::FlashRead) - 100.0).abs() < 1e-9);
        assert_eq!(a.distinct_stages(), 2);
        let json = a.to_json();
        assert!(json.contains("\"flash_read\""));
        assert!(json.contains("\"cache_miss\""));
        assert!(!json.contains("\"gc_step\""));
    }

    #[test]
    fn empty_attribution() {
        let a = Attribution::from_spans(std::iter::empty());
        assert_eq!(a.ops, 0);
        assert_eq!(a.share_pct(Stage::FlashRead), 0.0);
        assert_eq!(a.distinct_stages(), 0);
    }

    #[test]
    fn reads_per_lookup_invariant() {
        let mut d = ReadsPerLookup::default();
        for _ in 0..90 {
            d.note(0);
        }
        for _ in 0..10 {
            d.note(1);
        }
        assert!(d.invariant_ok());
        assert_eq!(d.lookups, 100);
        assert!((d.pct_within(0) - 90.0).abs() < 1e-9);
        assert!((d.pct_within(1) - 100.0).abs() < 1e-9);
        d.note(2);
        assert!(!d.invariant_ok());
        assert_eq!(d.max, 2);
        let json = d.to_json();
        assert!(json.contains("\"invariant_ok\": false"));
    }

    #[test]
    fn reads_per_lookup_merge_and_clamp() {
        let mut a = ReadsPerLookup::default();
        let mut b = ReadsPerLookup::default();
        a.note(1);
        b.note(40); // clamped into the 15+ bucket
        a.merge(&b);
        assert_eq!(a.lookups, 2);
        assert_eq!(a.max, 40);
        assert_eq!(a.histo[15], 1);
    }
}
