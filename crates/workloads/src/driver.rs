//! KVBench-style workload driver, generic over the device's index.

use rhik_ftl::IndexBackend;
use rhik_kvssd::{KvError, KvssdDevice};

use crate::ibm::TraceOp;
use crate::keygen::{KeyStream, Keygen};

/// Operation mix for generated workloads.
#[derive(Clone, Copy, Debug)]
pub struct OpMix {
    pub put_fraction: f64,
    pub get_fraction: f64,
    pub delete_fraction: f64,
}

impl OpMix {
    pub fn write_only() -> Self {
        OpMix { put_fraction: 1.0, get_fraction: 0.0, delete_fraction: 0.0 }
    }

    pub fn read_only() -> Self {
        OpMix { put_fraction: 0.0, get_fraction: 1.0, delete_fraction: 0.0 }
    }

    pub fn mixed(put: f64, get: f64, delete: f64) -> Self {
        let mix = OpMix { put_fraction: put, get_fraction: get, delete_fraction: delete };
        assert!((mix.put_fraction + mix.get_fraction + mix.delete_fraction - 1.0).abs() < 1e-9);
        mix
    }
}

/// What a run accomplished, in simulated time.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunStats {
    pub ops: u64,
    pub puts: u64,
    pub gets: u64,
    pub deletes: u64,
    pub errors: u64,
    pub bytes_moved: u64,
    /// Simulated nanoseconds the run occupied on the device clock.
    pub sim_ns: u64,
}

impl RunStats {
    /// Throughput in bytes per simulated second.
    pub fn bytes_per_sec(&self) -> f64 {
        if self.sim_ns == 0 {
            0.0
        } else {
            self.bytes_moved as f64 * 1e9 / self.sim_ns as f64
        }
    }

    /// Operations per simulated second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.sim_ns == 0 {
            0.0
        } else {
            self.ops as f64 * 1e9 / self.sim_ns as f64
        }
    }
}

/// Drives a device with generated or synthesized workloads.
pub struct WorkloadDriver;

impl WorkloadDriver {
    /// Sequential fill: `count` puts of `value_len`-byte values (the
    /// Fig. 6 write workloads). Returns stats over exactly this phase.
    pub fn fill<I: IndexBackend>(
        device: &mut KvssdDevice<I>,
        keygen: &mut Keygen,
        count: u64,
        value_len: usize,
    ) -> Result<RunStats, KvError> {
        let start_ns = (device.elapsed_secs() * 1e9) as u64;
        let mut stats = RunStats::default();
        let value = vec![0x5au8; value_len];
        for _ in 0..count {
            let key = keygen.next_key();
            match device.put(&key, &value) {
                Ok(()) => {
                    stats.puts += 1;
                    stats.bytes_moved += (key.len() + value.len()) as u64;
                }
                Err(KvError::KeyCollision) | Err(KvError::KeyRejected) => stats.errors += 1,
                Err(e) => return Err(e),
            }
            stats.ops += 1;
        }
        stats.sim_ns = (device.elapsed_secs() * 1e9) as u64 - start_ns;
        Ok(stats)
    }

    /// Read back `count` keys drawn from `keygen` (the Fig. 6 read
    /// workloads; run after a fill with an identically-seeded generator).
    pub fn read<I: IndexBackend>(
        device: &mut KvssdDevice<I>,
        keygen: &mut Keygen,
        count: u64,
    ) -> Result<RunStats, KvError> {
        let start_ns = (device.elapsed_secs() * 1e9) as u64;
        let mut stats = RunStats::default();
        for _ in 0..count {
            let key = keygen.next_key();
            match device.get(&key) {
                Ok(Some(v)) => {
                    stats.gets += 1;
                    stats.bytes_moved += (key.len() + v.len()) as u64;
                }
                Ok(None) => stats.errors += 1,
                Err(e) => return Err(e),
            }
            stats.ops += 1;
        }
        stats.sim_ns = (device.elapsed_secs() * 1e9) as u64 - start_ns;
        Ok(stats)
    }

    /// Run `count` operations drawn from `mix` over a `population` of
    /// sequential keys (puts overwrite, gets/deletes hit random members).
    pub fn run_mix<I: IndexBackend>(
        device: &mut KvssdDevice<I>,
        mix: &OpMix,
        population: u64,
        count: u64,
        value_len: usize,
        seed: u64,
    ) -> Result<RunStats, KvError> {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let keygen = Keygen::new(KeyStream::Sequential, 16, seed);
        let value = vec![0x6du8; value_len];
        let start_ns = (device.elapsed_secs() * 1e9) as u64;
        let mut stats = RunStats::default();

        for _ in 0..count {
            stats.ops += 1;
            let key = keygen.key_for(rng.gen_range(0..population));
            let dice: f64 = rng.gen();
            if dice < mix.put_fraction {
                match device.put(&key, &value) {
                    Ok(()) => {
                        stats.puts += 1;
                        stats.bytes_moved += (key.len() + value.len()) as u64;
                    }
                    Err(KvError::KeyCollision) | Err(KvError::KeyRejected) => stats.errors += 1,
                    Err(e) => return Err(e),
                }
            } else if dice < mix.put_fraction + mix.get_fraction {
                match device.get(&key) {
                    Ok(Some(v)) => {
                        stats.gets += 1;
                        stats.bytes_moved += (key.len() + v.len()) as u64;
                    }
                    Ok(None) => stats.gets += 1, // miss: population not yet filled
                    Err(e) => return Err(e),
                }
            } else {
                match device.delete(&key) {
                    Ok(()) => stats.deletes += 1,
                    Err(KvError::KeyNotFound) => stats.deletes += 1, // already gone
                    Err(e) => return Err(e),
                }
            }
        }
        stats.sim_ns = (device.elapsed_secs() * 1e9) as u64 - start_ns;
        Ok(stats)
    }

    /// Replay a synthesized trace (the Fig. 5 IBM clusters).
    pub fn replay<I: IndexBackend>(
        device: &mut KvssdDevice<I>,
        trace: &[TraceOp],
    ) -> Result<RunStats, KvError> {
        let start_ns = (device.elapsed_secs() * 1e9) as u64;
        let mut stats = RunStats::default();
        for op in trace {
            match op {
                TraceOp::Put { key, value_len } => {
                    let value = vec![0xa5u8; *value_len];
                    match device.put(key, &value) {
                        Ok(()) => {
                            stats.puts += 1;
                            stats.bytes_moved += (key.len() + value_len) as u64;
                        }
                        Err(KvError::KeyCollision) | Err(KvError::KeyRejected) => stats.errors += 1,
                        Err(e) => return Err(e),
                    }
                }
                TraceOp::Get { key } => match device.get(key) {
                    Ok(Some(v)) => {
                        stats.gets += 1;
                        stats.bytes_moved += (key.len() + v.len()) as u64;
                    }
                    Ok(None) => stats.errors += 1,
                    Err(e) => return Err(e),
                },
            }
            stats.ops += 1;
        }
        stats.sim_ns = (device.elapsed_secs() * 1e9) as u64 - start_ns;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ibm;
    use rhik_kvssd::DeviceConfig;

    #[test]
    fn fill_then_read_roundtrip() {
        let mut dev = KvssdDevice::rhik(
            DeviceConfig::small().with_profile(rhik_nand::DeviceProfile::kvemu_like()),
        );
        let mut w = Keygen::new(KeyStream::Sequential, 16, 1);
        let fill = WorkloadDriver::fill(&mut dev, &mut w, 200, 512).unwrap();
        assert_eq!(fill.puts, 200);
        assert_eq!(fill.errors, 0);
        assert!(fill.sim_ns > 0);
        assert!(fill.bytes_per_sec() > 0.0);

        let mut r = Keygen::new(KeyStream::Sequential, 16, 1);
        let read = WorkloadDriver::read(&mut dev, &mut r, 200).unwrap();
        assert_eq!(read.gets, 200);
        assert_eq!(read.errors, 0);
        assert!(read.ops_per_sec() > 0.0);
    }

    #[test]
    fn replay_ibm_cluster() {
        let mut dev = KvssdDevice::rhik(DeviceConfig::small());
        let cluster = &ibm::clusters()[1]; // 022: small index
        let (trace, population) = cluster.synthesize(16 * 1024, 17, 500, 0.0005, 7);
        let stats = WorkloadDriver::replay(&mut dev, &trace).unwrap();
        assert_eq!(stats.ops as usize, trace.len());
        assert!(stats.puts >= population);
        assert!(stats.gets > 0);
        assert_eq!(stats.errors, 0, "trace replay errors: {stats:?}");
    }

    #[test]
    fn run_mix_respects_fractions() {
        let mut dev = KvssdDevice::rhik(DeviceConfig::small());
        // Warm the population first so gets mostly hit.
        let mut g = Keygen::new(KeyStream::Sequential, 16, 3);
        WorkloadDriver::fill(&mut dev, &mut g, 200, 64).unwrap();
        let mix = OpMix::mixed(0.3, 0.6, 0.1);
        let stats = WorkloadDriver::run_mix(&mut dev, &mix, 200, 2_000, 64, 3).unwrap();
        assert_eq!(stats.ops, 2_000);
        let put_frac = stats.puts as f64 / stats.ops as f64;
        let get_frac = stats.gets as f64 / stats.ops as f64;
        let del_frac = stats.deletes as f64 / stats.ops as f64;
        assert!((put_frac - 0.3).abs() < 0.05, "puts {put_frac}");
        assert!((get_frac - 0.6).abs() < 0.05, "gets {get_frac}");
        assert!((del_frac - 0.1).abs() < 0.05, "deletes {del_frac}");
        assert_eq!(stats.errors, 0);
    }

    #[test]
    fn mix_fractions_validate() {
        let m = OpMix::mixed(0.5, 0.4, 0.1);
        assert!((m.put_fraction - 0.5).abs() < 1e-12);
        let _ = OpMix::write_only();
        let _ = OpMix::read_only();
    }

    #[test]
    #[should_panic]
    fn bad_mix_rejected() {
        OpMix::mixed(0.5, 0.4, 0.5);
    }
}
