//! Workload substrate: key/value generators, published request-size
//! distributions, synthetic IBM COS trace clusters, and a KVBench-style
//! driver.
//!
//! The paper evaluates RHIK with (a) KVBench-style sequential workloads of
//! fixed value sizes (Fig. 6), (b) replayed IBM Cloud Object Store KV
//! traces (Fig. 5), and (c) the published Baidu Atlas and Facebook
//! Memcached ETC request-size distributions (Table I). We rebuild all
//! three:
//!
//! * [`keygen`] — sequential / uniform / Zipfian key streams (own Zipf
//!   sampler, no external dependency beyond `rand`),
//! * [`distributions`] — Table I's histograms and the implied key-count
//!   math for a 4 TB device,
//! * [`ibm`] — synthetic stand-ins for the eight IBM COS clusters used in
//!   Fig. 5, parameterized by the property that experiment actually
//!   exercises: index footprint relative to a fixed FTL cache budget
//!   (see DESIGN.md "Substitutions"),
//! * [`driver`] — a KVBench-style op driver generic over the device's
//!   index backend.

pub mod distributions;
pub mod driver;
pub mod ibm;
pub mod keygen;
pub mod ycsb;

pub use driver::{OpMix, RunStats, WorkloadDriver};
pub use keygen::{KeyStream, Keygen, ZipfSampler};
pub use ycsb::{zipf_record_key, YcsbConfig, YcsbPreset};
