//! The published request-size distributions of Table I, and the implied
//! key-count math for a 4 TB KVSSD.
//!
//! Table I of the paper tabulates two production workloads:
//!
//! * **Baidu Atlas** writes (Lai et al., MSST '15): dominated by
//!   128–256 KB objects → a 4 TB device holds 34 M – 2.7 B pairs —
//!   *within* the PM983's observed ~3.1 B-key limit.
//! * **Facebook Memcached ETC** (Atikoglu et al., SIGMETRICS '12):
//!   dominated by tiny values → 24 B – 744 B pairs per 4 TB —
//!   *far beyond* that limit. This is the motivation for RHIK's
//!   "virtually unlimited keys".

use rand::Rng;

/// One bucket of a request-size histogram.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SizeBucket {
    /// Inclusive lower bound, bytes.
    pub min_bytes: u64,
    /// Inclusive upper bound, bytes.
    pub max_bytes: u64,
    /// Fraction of requests in this bucket (sums to 1 across the table).
    pub fraction: f64,
}

/// A request-size distribution (one column of Table I).
#[derive(Clone, Debug)]
pub struct SizeDistribution {
    pub name: &'static str,
    pub buckets: Vec<SizeBucket>,
}

impl SizeDistribution {
    /// Baidu Atlas write request sizes (Table I, left).
    pub fn baidu_atlas_write() -> Self {
        SizeDistribution {
            name: "Baidu Atlas - Write",
            buckets: vec![
                SizeBucket { min_bytes: 1, max_bytes: 4 << 10, fraction: 0.012 },
                SizeBucket { min_bytes: (4 << 10) + 1, max_bytes: 16 << 10, fraction: 0.010 },
                SizeBucket { min_bytes: (16 << 10) + 1, max_bytes: 32 << 10, fraction: 0.008 },
                SizeBucket { min_bytes: (32 << 10) + 1, max_bytes: 64 << 10, fraction: 0.012 },
                SizeBucket { min_bytes: (64 << 10) + 1, max_bytes: 128 << 10, fraction: 0.017 },
                SizeBucket { min_bytes: (128 << 10) + 1, max_bytes: 256 << 10, fraction: 0.941 },
            ],
        }
    }

    /// Facebook Memcached ETC request sizes (Table I, right).
    pub fn fb_memcached_etc() -> Self {
        SizeDistribution {
            name: "FB Memcached - ETC",
            buckets: vec![
                SizeBucket { min_bytes: 1, max_bytes: 11, fraction: 0.40 },
                SizeBucket { min_bytes: 12, max_bytes: 100, fraction: 0.10 },
                SizeBucket { min_bytes: 101, max_bytes: 1 << 10, fraction: 0.45 },
                SizeBucket { min_bytes: (1 << 10) + 1, max_bytes: 1 << 20, fraction: 0.05 },
            ],
        }
    }

    /// Fractions must form a probability distribution.
    pub fn validate(&self) -> Result<(), String> {
        let total: f64 = self.buckets.iter().map(|b| b.fraction).sum();
        if (total - 1.0).abs() > 1e-6 {
            return Err(format!("{}: fractions sum to {total}", self.name));
        }
        for b in &self.buckets {
            if b.min_bytes > b.max_bytes || b.fraction < 0.0 {
                return Err(format!("{}: malformed bucket {b:?}", self.name));
            }
        }
        Ok(())
    }

    /// Mean request size assuming sizes uniform within each bucket.
    pub fn mean_bytes(&self) -> f64 {
        self.buckets.iter().map(|b| b.fraction * (b.min_bytes + b.max_bytes) as f64 / 2.0).sum()
    }

    /// Estimated key-count range a device of `capacity_bytes` implies:
    /// `capacity / mean-request-size` (typical mix) up to
    /// `capacity / mean-of-smallest-bucket` (all-small extreme).
    ///
    /// Table I's published ranges (see
    /// [`SizeDistribution::paper_reported_key_range`]) come from the
    /// original workload studies and are not exactly derivable from the
    /// coarse histograms; this estimator brackets the same conclusion —
    /// Atlas-like workloads fit the PM983's key ceiling, Memcached-like
    /// ones exceed it by orders of magnitude.
    pub fn implied_key_range(&self, capacity_bytes: u64) -> (u64, u64) {
        let smallest_bucket = self.buckets.iter().min_by_key(|b| b.min_bytes).expect("nonempty");
        let small_mean = (smallest_bucket.min_bytes + smallest_bucket.max_bytes).max(2) / 2;
        let lo = (capacity_bytes as f64 / self.mean_bytes()) as u64;
        (lo, capacity_bytes / small_mean)
    }

    /// The key-count range the paper's Table I reports for a 4 TB device.
    pub fn paper_reported_key_range(&self) -> (u64, u64) {
        match self.name {
            "Baidu Atlas - Write" => (34_000_000, 2_700_000_000),
            "FB Memcached - ETC" => (24_000_000_000, 744_000_000_000),
            _ => panic!("no published range for {}", self.name),
        }
    }

    /// Draw one request size (uniform within a fraction-weighted bucket).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let mut u: f64 = rng.gen();
        for b in &self.buckets {
            if u < b.fraction {
                return rng.gen_range(b.min_bytes..=b.max_bytes);
            }
            u -= b.fraction;
        }
        let last = self.buckets.last().expect("nonempty");
        last.max_bytes
    }
}

/// Average KV-pair sizes of the three Facebook RocksDB deployments the
/// paper cites (Cao et al., FAST '20): UDB, ZippyDB, UP2X.
pub fn rocksdb_avg_pair_bytes() -> [(&'static str, u64); 3] {
    [("UDB", 153), ("ZippyDB", 90), ("UP2X", 57)]
}

/// Keys a 4 TB device implies at a given average pair size (the paper's
/// "26–700 billion keys" span).
pub fn keys_for_avg_size(capacity_bytes: u64, avg_pair_bytes: u64) -> u64 {
    capacity_bytes / avg_pair_bytes.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const FOUR_TB: u64 = 4 * 1000 * 1000 * 1000 * 1000;

    #[test]
    fn distributions_validate() {
        SizeDistribution::baidu_atlas_write().validate().unwrap();
        SizeDistribution::fb_memcached_etc().validate().unwrap();
    }

    #[test]
    fn baidu_key_range_brackets_table_one() {
        // Paper reports 34 M – 2.7 B keys on a 4 TB device; the estimator
        // must land in the same orders of magnitude.
        let (lo, hi) = SizeDistribution::baidu_atlas_write().implied_key_range(FOUR_TB);
        assert!((5_000_000..200_000_000).contains(&lo), "lo = {lo}");
        assert!((500_000_000..5_000_000_000).contains(&hi), "hi = {hi}");
        let (plo, phi) = SizeDistribution::baidu_atlas_write().paper_reported_key_range();
        assert_eq!((plo, phi), (34_000_000, 2_700_000_000));
    }

    #[test]
    fn fb_key_range_brackets_table_one() {
        // Paper reports 24 B – 744 B keys; the all-small extreme of our
        // estimator reproduces the upper end's magnitude.
        let (lo, hi) = SizeDistribution::fb_memcached_etc().implied_key_range(FOUR_TB);
        assert!(lo > 10_000_000, "lo = {lo}");
        assert!((100_000_000_000..2_000_000_000_000).contains(&hi), "hi = {hi}");
        let (plo, phi) = SizeDistribution::fb_memcached_etc().paper_reported_key_range();
        assert_eq!((plo, phi), (24_000_000_000, 744_000_000_000));
    }

    #[test]
    fn fb_needs_more_keys_than_pm983_supports() {
        // The motivating claim: the PM983 caps at ~3.1 B keys. The FB range
        // (both the published one and our all-small estimate) exceeds it;
        // the Baidu range does not.
        const PM983_MAX_KEYS: u64 = 3_100_000_000;
        let (fb_lo, fb_hi) = SizeDistribution::fb_memcached_etc().paper_reported_key_range();
        assert!(fb_lo > PM983_MAX_KEYS && fb_hi > PM983_MAX_KEYS);
        let (_, est_hi) = SizeDistribution::fb_memcached_etc().implied_key_range(FOUR_TB);
        assert!(est_hi > PM983_MAX_KEYS);
        let (baidu_lo, baidu_hi) = SizeDistribution::baidu_atlas_write().paper_reported_key_range();
        assert!(baidu_lo < PM983_MAX_KEYS && baidu_hi < PM983_MAX_KEYS);
    }

    #[test]
    fn baidu_mean_is_large_fb_mean_is_small() {
        let baidu = SizeDistribution::baidu_atlas_write().mean_bytes();
        let fb = SizeDistribution::fb_memcached_etc().mean_bytes();
        assert!(baidu > 100_000.0, "baidu mean {baidu}");
        assert!(fb < 50_000.0, "fb mean {fb}");
    }

    #[test]
    fn sampling_respects_buckets() {
        let d = SizeDistribution::baidu_atlas_write();
        let mut rng = StdRng::seed_from_u64(1);
        let mut big = 0usize;
        const N: usize = 10_000;
        for _ in 0..N {
            let s = d.sample(&mut rng);
            assert!((1..=256 << 10).contains(&s));
            if s > 128 << 10 {
                big += 1;
            }
        }
        // 94.1% of draws should land in the dominant bucket (±4%).
        assert!((big as f64 / N as f64 - 0.941).abs() < 0.04, "big = {big}");
    }

    #[test]
    fn rocksdb_key_counts_span_paper_range() {
        // "between 26 billion and 700 billion keys" for a 4 TB device.
        for (name, avg) in rocksdb_avg_pair_bytes() {
            let keys = keys_for_avg_size(FOUR_TB, avg);
            assert!((20_000_000_000..=80_000_000_000).contains(&keys), "{name}: {keys}");
        }
    }
}
