//! Synthetic stand-ins for the IBM Cloud Object Store KV traces of Fig. 5.
//!
//! We do not have the licensed IBM traces; per DESIGN.md's substitution
//! rule we rebuild the property Fig. 5 actually exercises. The paper
//! replays eight clusters against a KVSSD whose FTL cache is capped at
//! 10 MB and reports that:
//!
//! * four clusters (022, 026, 052, 072) "need very small index compared to
//!   SSD cache budget" — their working set fits the cache,
//! * two clusters (083, 096) "need significantly large index",
//! * the remaining two (001, 081) sit in between,
//! * request traffic is object-storage-like: read-heavy with skewed
//!   access and object sizes from kilobytes to megabytes.
//!
//! Each [`ClusterSpec`] pins the object count so the implied index
//! footprint lands in the intended regime for a given cache budget; the
//! object-size and skew parameters vary per cluster so traffic is not
//! uniform across them.

use crate::keygen::ZipfSampler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which regime a cluster's index footprint targets relative to the
/// experiment's cache budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexRegime {
    /// Index ≪ cache: every table stays resident.
    Small,
    /// Index ≈ cache: borderline thrashing.
    Borderline,
    /// Index ≫ cache: most lookups miss.
    Large,
}

/// Parameters of one synthetic cluster.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    /// Cluster label, matching Fig. 5's x-axis.
    pub name: &'static str,
    pub regime: IndexRegime,
    /// Index-footprint-to-cache ratio this cluster targets.
    pub index_to_cache: f64,
    /// Mean object size in bytes.
    pub mean_object_bytes: u64,
    /// Zipf skew of the access stream.
    pub theta: f64,
    /// Fraction of operations that are reads (IBM COS is read-dominant).
    pub read_fraction: f64,
}

/// The eight clusters of Fig. 5, in plot order.
pub fn clusters() -> Vec<ClusterSpec> {
    vec![
        ClusterSpec {
            name: "001",
            regime: IndexRegime::Borderline,
            index_to_cache: 1.5,
            mean_object_bytes: 64 << 10,
            theta: 0.90,
            read_fraction: 0.78,
        },
        ClusterSpec {
            name: "022",
            regime: IndexRegime::Small,
            index_to_cache: 0.20,
            mean_object_bytes: 256 << 10,
            theta: 0.80,
            read_fraction: 0.90,
        },
        ClusterSpec {
            name: "026",
            regime: IndexRegime::Small,
            index_to_cache: 0.30,
            mean_object_bytes: 128 << 10,
            theta: 0.95,
            read_fraction: 0.85,
        },
        ClusterSpec {
            name: "052",
            regime: IndexRegime::Small,
            index_to_cache: 0.40,
            mean_object_bytes: 96 << 10,
            theta: 0.85,
            read_fraction: 0.92,
        },
        ClusterSpec {
            name: "072",
            regime: IndexRegime::Small,
            index_to_cache: 0.50,
            mean_object_bytes: 48 << 10,
            theta: 0.90,
            read_fraction: 0.88,
        },
        ClusterSpec {
            name: "081",
            regime: IndexRegime::Borderline,
            index_to_cache: 2.0,
            mean_object_bytes: 32 << 10,
            theta: 0.92,
            read_fraction: 0.80,
        },
        ClusterSpec {
            name: "083",
            regime: IndexRegime::Large,
            index_to_cache: 6.0,
            mean_object_bytes: 8 << 10,
            theta: 0.70,
            read_fraction: 0.82,
        },
        ClusterSpec {
            name: "096",
            regime: IndexRegime::Large,
            index_to_cache: 10.0,
            mean_object_bytes: 4 << 10,
            theta: 0.60,
            read_fraction: 0.86,
        },
    ]
}

/// One trace operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceOp {
    Put { key: Vec<u8>, value_len: usize },
    Get { key: Vec<u8> },
}

impl ClusterSpec {
    /// Object count needed so this cluster's *index* footprint is
    /// `index_to_cache × cache_budget`, at `bytes_per_record` of index per
    /// key (17 B for RHIK/multilevel record tables, before table slack).
    pub fn object_count(&self, cache_budget_bytes: u64, bytes_per_record: u64) -> u64 {
        ((cache_budget_bytes as f64 * self.index_to_cache) / bytes_per_record as f64).max(64.0)
            as u64
    }

    /// Synthesize the trace: a load phase putting every object once, then
    /// `ops` operations with this cluster's read/write mix and skew.
    ///
    /// `value_scale` shrinks object sizes uniformly so scaled-down devices
    /// can hold the population (the index footprint — what Fig. 5
    /// measures — depends only on the key count).
    pub fn synthesize(
        &self,
        cache_budget_bytes: u64,
        bytes_per_record: u64,
        ops: usize,
        value_scale: f64,
        seed: u64,
    ) -> (Vec<TraceOp>, u64) {
        let population = self.object_count(cache_budget_bytes, bytes_per_record);
        let mut rng = StdRng::seed_from_u64(seed ^ cluster_seed(self.name));
        let zipf = ZipfSampler::new(population, self.theta);
        let value_len = ((self.mean_object_bytes as f64 * value_scale) as usize).max(16);

        let mut trace = Vec::with_capacity(population as usize + ops);
        // Load in shuffled order: object ids must not correlate with access
        // hotness (ranks), or level-structured indexes would accidentally
        // keep all hot keys in their always-cached first level.
        let mut ids: Vec<u64> = (0..population).collect();
        for i in (1..ids.len()).rev() {
            ids.swap(i, rng.gen_range(0..=i));
        }
        for id in ids {
            trace.push(TraceOp::Put { key: self.key_for(id), value_len });
        }
        for _ in 0..ops {
            let id = zipf.sample(&mut rng);
            if rng.gen::<f64>() < self.read_fraction {
                trace.push(TraceOp::Get { key: self.key_for(id) });
            } else {
                trace.push(TraceOp::Put { key: self.key_for(id), value_len });
            }
        }
        (trace, population)
    }

    fn key_for(&self, id: u64) -> Vec<u8> {
        format!("cos{}-{id:016}", self.name).into_bytes()
    }
}

/// Distinct deterministic sub-seed per cluster (FNV-1a over the name).
fn cluster_seed(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| (h ^ b as u64).wrapping_mul(0x100_0000_01b3))
}

#[cfg(test)]
mod tests {
    use super::*;

    const CACHE: u64 = 64 * 1024; // scaled-down stand-in for the 10 MB cache

    #[test]
    fn eight_clusters_in_plot_order() {
        let c = clusters();
        assert_eq!(c.len(), 8);
        let names: Vec<_> = c.iter().map(|c| c.name).collect();
        assert_eq!(names, vec!["001", "022", "026", "052", "072", "081", "083", "096"]);
    }

    #[test]
    fn regimes_match_paper_grouping() {
        for c in clusters() {
            match c.name {
                "022" | "026" | "052" | "072" => {
                    assert_eq!(c.regime, IndexRegime::Small);
                    assert!(c.index_to_cache < 1.0);
                }
                "083" | "096" => {
                    assert_eq!(c.regime, IndexRegime::Large);
                    assert!(c.index_to_cache > 4.0);
                }
                _ => assert_eq!(c.regime, IndexRegime::Borderline),
            }
        }
    }

    #[test]
    fn object_counts_scale_with_cache() {
        for c in clusters() {
            let small = c.object_count(CACHE, 17);
            let big = c.object_count(CACHE * 4, 17);
            assert!(big >= small * 3, "{}: {small} vs {big}", c.name);
        }
    }

    #[test]
    fn synthesized_trace_shape() {
        let c = &clusters()[1]; // 022, small
        let (trace, population) = c.synthesize(CACHE, 17, 1000, 0.001, 42);
        assert_eq!(trace.len() as u64, population + 1000);
        // Load phase first.
        assert!(matches!(trace[0], TraceOp::Put { .. }));
        // Mix respects read fraction roughly.
        let reads = trace[population as usize..]
            .iter()
            .filter(|op| matches!(op, TraceOp::Get { .. }))
            .count();
        let frac = reads as f64 / 1000.0;
        assert!((frac - c.read_fraction).abs() < 0.06, "read fraction {frac}");
    }

    #[test]
    fn traces_deterministic_per_seed() {
        let c = &clusters()[6];
        let (a, _) = c.synthesize(CACHE, 17, 200, 0.001, 9);
        let (b, _) = c.synthesize(CACHE, 17, 200, 0.001, 9);
        assert_eq!(a, b);
        let (d, _) = c.synthesize(CACHE, 17, 200, 0.001, 10);
        assert_ne!(a, d);
    }

    #[test]
    fn keys_are_cluster_scoped() {
        let cs = clusters();
        let (t0, _) = cs[0].synthesize(CACHE, 17, 10, 0.001, 1);
        let (t1, _) = cs[7].synthesize(CACHE, 17, 10, 0.001, 1);
        let k0 = match &t0[0] {
            TraceOp::Put { key, .. } => key.clone(),
            _ => unreachable!(),
        };
        let k1 = match &t1[0] {
            TraceOp::Put { key, .. } => key.clone(),
            _ => unreachable!(),
        };
        assert!(k0.starts_with(b"cos001"));
        assert!(k1.starts_with(b"cos096"));
    }
}
