//! Key stream generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Zipfian sampler over `{0, 1, …, n-1}` with skew `theta` ∈ (0, 1).
///
/// Uses the closed-form approximation of Gray et al. ("Quickly generating
/// billion-record synthetic databases", SIGMOD '94), so no O(n) table is
/// needed and `n` can be huge. `theta → 0` approaches uniform; the classic
/// YCSB default is 0.99.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl ZipfSampler {
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "domain must be non-empty");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        ZipfSampler { n, theta, alpha, zetan, eta, zeta2 }
    }

    /// Exact zeta for small n, Euler–Maclaurin approximation for large n —
    /// keeps construction O(1)-ish for billion-key domains.
    fn zeta(n: u64, theta: f64) -> f64 {
        const EXACT: u64 = 1_000_000;
        if n <= EXACT {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            let head: f64 = (1..=EXACT).map(|i| 1.0 / (i as f64).powf(theta)).sum();
            // ∫_{EXACT}^{n} x^-theta dx
            let tail =
                ((n as f64).powf(1.0 - theta) - (EXACT as f64).powf(1.0 - theta)) / (1.0 - theta);
            head + tail
        }
    }

    /// Draw one rank (0 = hottest).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    pub fn domain(&self) -> u64 {
        self.n
    }

    #[doc(hidden)]
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

/// The key-ordering disciplines the paper's workloads use.
#[derive(Clone, Debug)]
pub enum KeyStream {
    /// `k` = 0, 1, 2, … (the Fig. 6 "sequential workloads").
    Sequential,
    /// Uniform over a fixed population.
    Uniform { population: u64 },
    /// Zipfian over a fixed population.
    Zipf { population: u64, theta: f64 },
}

/// Deterministic generator of fixed-size keys.
///
/// Keys are rendered as `"<prefix><id padded to width>"` and padded with
/// `#` to exactly `key_size` bytes, matching KVBench's fixed-key-size
/// setup (Fig. 6 uses 16 B keys; Fig. 8a contrasts 16 B and 128 B).
pub struct Keygen {
    stream: KeyStream,
    key_size: usize,
    prefix: Vec<u8>,
    rng: StdRng,
    zipf: Option<ZipfSampler>,
    next_seq: u64,
}

impl Keygen {
    pub fn new(stream: KeyStream, key_size: usize, seed: u64) -> Self {
        Self::with_prefix(stream, key_size, seed, b"k")
    }

    pub fn with_prefix(stream: KeyStream, key_size: usize, seed: u64, prefix: &[u8]) -> Self {
        assert!(key_size >= prefix.len() + 12, "key too small for prefix + 12-digit id");
        let zipf = match &stream {
            KeyStream::Zipf { population, theta } => Some(ZipfSampler::new(*population, *theta)),
            _ => None,
        };
        Keygen {
            stream,
            key_size,
            prefix: prefix.to_vec(),
            rng: StdRng::seed_from_u64(seed),
            zipf,
            next_seq: 0,
        }
    }

    /// Render the key for a given id.
    pub fn key_for(&self, id: u64) -> Vec<u8> {
        let mut key = Vec::with_capacity(self.key_size);
        key.extend_from_slice(&self.prefix);
        key.extend_from_slice(format!("{id:012}").as_bytes());
        while key.len() < self.key_size {
            key.push(b'#');
        }
        key
    }

    /// Produce the next key in the stream.
    pub fn next_key(&mut self) -> Vec<u8> {
        let id = match &self.stream {
            KeyStream::Sequential => {
                let id = self.next_seq;
                self.next_seq += 1;
                id
            }
            KeyStream::Uniform { population } => self.rng.gen_range(0..*population),
            KeyStream::Zipf { .. } => {
                self.zipf.as_ref().expect("constructed with stream").sample(&mut self.rng)
            }
        };
        self.key_for(id)
    }

    pub fn key_size(&self) -> usize {
        self.key_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_keys_are_distinct_and_sized() {
        let mut g = Keygen::new(KeyStream::Sequential, 16, 1);
        let a = g.next_key();
        let b = g.next_key();
        assert_eq!(a.len(), 16);
        assert_eq!(b.len(), 16);
        assert_ne!(a, b);
        assert_eq!(a, g.key_for(0));
        assert_eq!(b, g.key_for(1));
    }

    #[test]
    fn key_sizes_honored() {
        for size in [16, 32, 128] {
            let mut g = Keygen::new(KeyStream::Sequential, size, 1);
            assert_eq!(g.next_key().len(), size);
        }
    }

    #[test]
    #[should_panic(expected = "key too small")]
    fn tiny_keys_rejected() {
        Keygen::new(KeyStream::Sequential, 8, 1);
    }

    #[test]
    fn uniform_covers_population() {
        let mut g = Keygen::new(KeyStream::Uniform { population: 10 }, 16, 42);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(g.next_key());
        }
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Keygen::new(KeyStream::Uniform { population: 1000 }, 16, 7);
        let mut b = Keygen::new(KeyStream::Uniform { population: 1000 }, 16, 7);
        for _ in 0..100 {
            assert_eq!(a.next_key(), b.next_key());
        }
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let z = ZipfSampler::new(10_000, 0.99);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = std::collections::HashMap::new();
        const N: usize = 100_000;
        for _ in 0..N {
            let r = z.sample(&mut rng);
            assert!(r < 10_000);
            *counts.entry(r).or_insert(0usize) += 1;
        }
        // Rank 0 should dominate: ~1/zeta(n) of all draws (≈10% here),
        // vastly above uniform (0.01%).
        let hottest = counts[&0];
        assert!(hottest > N / 50, "rank 0 drawn {hottest} times");
        // And the tail is long: many distinct ranks appear.
        assert!(counts.len() > 1_000, "only {} distinct ranks", counts.len());
    }

    #[test]
    fn zipf_low_theta_is_flat() {
        let z = ZipfSampler::new(1_000, 0.01);
        let mut rng = StdRng::seed_from_u64(4);
        let mut hot = 0usize;
        const N: usize = 50_000;
        for _ in 0..N {
            if z.sample(&mut rng) == 0 {
                hot += 1;
            }
        }
        // Near-uniform: rank 0 ≈ N/1000, allow wide slack.
        assert!(hot < N / 100, "theta≈0 too skewed: {hot}");
    }

    #[test]
    fn zipf_zeta_approximation_continuous() {
        // The approximate zeta must be close to exact at the switch point.
        let below = ZipfSampler::zeta(1_000_000, 0.9);
        let above = ZipfSampler::zeta(1_000_001, 0.9);
        assert!((above - below).abs() / below < 1e-6);
    }

    #[test]
    fn prefix_appears_in_keys() {
        let mut g = Keygen::with_prefix(KeyStream::Sequential, 24, 1, b"user:");
        let k = g.next_key();
        assert!(k.starts_with(b"user:"));
        assert_eq!(k.len(), 24);
    }
}
