//! YCSB-style core workload presets.
//!
//! The paper's discussion (§VI) frames KVSSDs as NoSQL substrates; YCSB's
//! core workloads are the de-facto way to exercise such stores. Each
//! preset follows the published mix (Cooper et al., SoCC '10):
//!
//! | preset | mix | distribution |
//! |---|---|---|
//! | A | 50 % read / 50 % update | Zipfian |
//! | B | 95 % read / 5 % update | Zipfian |
//! | C | 100 % read | Zipfian |
//! | D | 95 % read / 5 % insert | latest |
//! | E | 95 % scan / 5 % insert | Zipfian (scan length ≤ 100) |
//! | F | 50 % read / 50 % read-modify-write | Zipfian |

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rhik_ftl::IndexBackend;
use rhik_kvssd::{KvError, KvssdDevice};

use crate::driver::RunStats;
use crate::keygen::ZipfSampler;

/// The six core presets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum YcsbPreset {
    A,
    B,
    C,
    D,
    E,
    F,
}

impl YcsbPreset {
    pub fn all() -> [YcsbPreset; 6] {
        [YcsbPreset::A, YcsbPreset::B, YcsbPreset::C, YcsbPreset::D, YcsbPreset::E, YcsbPreset::F]
    }

    pub fn name(self) -> &'static str {
        match self {
            YcsbPreset::A => "A (update heavy)",
            YcsbPreset::B => "B (read mostly)",
            YcsbPreset::C => "C (read only)",
            YcsbPreset::D => "D (read latest)",
            YcsbPreset::E => "E (short scans)",
            YcsbPreset::F => "F (read-modify-write)",
        }
    }

    /// Lowercase single-letter tag, as used by `--ycsb a|b|c` flags.
    pub fn short_name(self) -> &'static str {
        match self {
            YcsbPreset::A => "a",
            YcsbPreset::B => "b",
            YcsbPreset::C => "c",
            YcsbPreset::D => "d",
            YcsbPreset::E => "e",
            YcsbPreset::F => "f",
        }
    }

    /// Parse a `--ycsb` flag value (either case).
    pub fn from_flag(flag: &str) -> Option<Self> {
        match flag.to_ascii_lowercase().as_str() {
            "a" => Some(YcsbPreset::A),
            "b" => Some(YcsbPreset::B),
            "c" => Some(YcsbPreset::C),
            "d" => Some(YcsbPreset::D),
            "e" => Some(YcsbPreset::E),
            "f" => Some(YcsbPreset::F),
            _ => None,
        }
    }

    /// Read fraction for the *core* presets A/B/C, whose op streams are
    /// a stateless read/update mix over a zipf-scattered key space —
    /// the shape external load generators (the network bench) can
    /// reproduce op-by-op. D/E/F are stateful (latest-reads, scans,
    /// read-modify-write) and only run through [`run`].
    pub fn read_fraction(self) -> Option<f64> {
        match self {
            YcsbPreset::A => Some(0.5),
            YcsbPreset::B => Some(0.95),
            YcsbPreset::C => Some(1.0),
            YcsbPreset::D | YcsbPreset::E | YcsbPreset::F => None,
        }
    }
}

/// The key a zipf rank maps to — rank scattered over the record space
/// exactly as [`run`] does it, so external generators (the network load
/// bench) touch the same keys with the same popularity as the in-process
/// YCSB driver.
pub fn zipf_record_key(rank: u64, records: u64) -> Vec<u8> {
    record_key(scatter(rank, records))
}

/// YCSB run parameters.
#[derive(Clone, Copy, Debug)]
pub struct YcsbConfig {
    /// Records loaded before the measured phase.
    pub records: u64,
    /// Operations in the measured phase.
    pub operations: u64,
    /// Value size in bytes (YCSB default is 10 × 100 B fields; pick one).
    pub value_bytes: usize,
    /// Zipfian skew for A/B/C/E/F.
    pub theta: f64,
    pub seed: u64,
}

impl Default for YcsbConfig {
    fn default() -> Self {
        YcsbConfig { records: 5_000, operations: 10_000, value_bytes: 1_000, theta: 0.99, seed: 42 }
    }
}

fn record_key(id: u64) -> Vec<u8> {
    format!("user{id:019}").into_bytes()
}

/// YCSB decouples popularity from insertion order by hashing the Zipf rank
/// onto the key space (FNV in the reference implementation). Without this,
/// level-structured indexes would keep every hot key in their first,
/// always-cached level purely by load order.
fn scatter(rank: u64, records: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in rank.to_le_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h % records
}

/// Run one preset against a device. Returns the measured-phase stats.
pub fn run<I: IndexBackend>(
    device: &mut KvssdDevice<I>,
    preset: YcsbPreset,
    cfg: &YcsbConfig,
) -> Result<RunStats, KvError> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let value = vec![0x59u8; cfg.value_bytes];

    // Load phase (not measured).
    for id in 0..cfg.records {
        device.put(&record_key(id), &value)?;
    }

    let zipf = ZipfSampler::new(cfg.records, cfg.theta);
    let mut inserted = cfg.records;
    let start_ns = (device.elapsed_secs() * 1e9) as u64;
    let mut stats = RunStats::default();

    for _ in 0..cfg.operations {
        stats.ops += 1;
        match preset {
            YcsbPreset::A | YcsbPreset::B | YcsbPreset::C => {
                let read_fraction = match preset {
                    YcsbPreset::A => 0.5,
                    YcsbPreset::B => 0.95,
                    _ => 1.0,
                };
                let key = record_key(scatter(zipf.sample(&mut rng), cfg.records));
                if rng.gen::<f64>() < read_fraction {
                    match device.get(&key)? {
                        Some(v) => {
                            stats.gets += 1;
                            stats.bytes_moved += v.len() as u64;
                        }
                        None => stats.errors += 1,
                    }
                } else {
                    device.put(&key, &value)?;
                    stats.puts += 1;
                    stats.bytes_moved += value.len() as u64;
                }
            }
            YcsbPreset::D => {
                if rng.gen::<f64>() < 0.95 {
                    // Read latest: skew toward recently inserted ids.
                    let back = zipf.sample(&mut rng).min(inserted - 1);
                    let key = record_key(inserted - 1 - back);
                    match device.get(&key)? {
                        Some(v) => {
                            stats.gets += 1;
                            stats.bytes_moved += v.len() as u64;
                        }
                        None => stats.errors += 1,
                    }
                } else {
                    device.put(&record_key(inserted), &value)?;
                    inserted += 1;
                    stats.puts += 1;
                    stats.bytes_moved += value.len() as u64;
                }
            }
            YcsbPreset::E => {
                if rng.gen::<f64>() < 0.95 {
                    // Short scan: iterate is unordered in a hash index, so
                    // model the scan as `len` point reads from the zipf
                    // start (the hash-index cost of YCSB-E, which is
                    // exactly why LSM designs exist — §VI discussion).
                    let len = rng.gen_range(1..=100u64);
                    let start = scatter(zipf.sample(&mut rng), cfg.records);
                    for i in 0..len {
                        let key = record_key((start + i) % cfg.records);
                        if let Some(v) = device.get(&key)? {
                            stats.bytes_moved += v.len() as u64;
                        }
                    }
                    stats.gets += 1;
                } else {
                    device.put(&record_key(inserted), &value)?;
                    inserted += 1;
                    stats.puts += 1;
                }
            }
            YcsbPreset::F => {
                let key = record_key(scatter(zipf.sample(&mut rng), cfg.records));
                if rng.gen::<f64>() < 0.5 {
                    match device.get(&key)? {
                        Some(v) => {
                            stats.gets += 1;
                            stats.bytes_moved += v.len() as u64;
                        }
                        None => stats.errors += 1,
                    }
                } else {
                    // Read-modify-write.
                    match device.get(&key)? {
                        Some(old) => {
                            let mut v = old.to_vec();
                            if !v.is_empty() {
                                v[0] = v[0].wrapping_add(1);
                            }
                            device.put(&key, &v)?;
                            stats.gets += 1;
                            stats.puts += 1;
                            stats.bytes_moved += 2 * v.len() as u64;
                        }
                        None => stats.errors += 1,
                    }
                }
            }
        }
    }

    stats.sim_ns = (device.elapsed_secs() * 1e9) as u64 - start_ns;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhik_kvssd::DeviceConfig;

    fn small() -> YcsbConfig {
        YcsbConfig { records: 300, operations: 600, value_bytes: 128, ..Default::default() }
    }

    #[test]
    fn all_presets_run_clean_on_rhik() {
        for preset in YcsbPreset::all() {
            let mut dev = KvssdDevice::rhik(
                DeviceConfig::small().with_profile(rhik_nand::DeviceProfile::kvemu_like()),
            );
            let stats = run(&mut dev, preset, &small())
                .unwrap_or_else(|e| panic!("preset {} failed: {e}", preset.name()));
            assert_eq!(stats.ops, 600, "{}", preset.name());
            assert_eq!(stats.errors, 0, "{}: {stats:?}", preset.name());
            assert!(stats.sim_ns > 0);
        }
    }

    #[test]
    fn preset_mixes_have_expected_shape() {
        let mut dev = KvssdDevice::rhik(DeviceConfig::small());
        let a = run(&mut dev, YcsbPreset::A, &small()).unwrap();
        // ~50/50 split.
        let put_frac = a.puts as f64 / a.ops as f64;
        assert!((0.4..0.6).contains(&put_frac), "A put fraction {put_frac}");

        let mut dev = KvssdDevice::rhik(DeviceConfig::small());
        let c = run(&mut dev, YcsbPreset::C, &small()).unwrap();
        assert_eq!(c.puts, 0, "C is read-only");
        assert_eq!(c.gets, c.ops);
    }

    #[test]
    fn flag_and_mix_accessors_agree_with_run() {
        assert_eq!(YcsbPreset::from_flag("a"), Some(YcsbPreset::A));
        assert_eq!(YcsbPreset::from_flag("C"), Some(YcsbPreset::C));
        assert_eq!(YcsbPreset::from_flag("x"), None);
        for p in YcsbPreset::all() {
            assert_eq!(YcsbPreset::from_flag(p.short_name()), Some(p));
        }
        assert_eq!(YcsbPreset::A.read_fraction(), Some(0.5));
        assert_eq!(YcsbPreset::B.read_fraction(), Some(0.95));
        assert_eq!(YcsbPreset::C.read_fraction(), Some(1.0));
        assert_eq!(YcsbPreset::E.read_fraction(), None);
        // The exported key function is the run loop's own mapping.
        assert_eq!(zipf_record_key(0, 100), record_key(scatter(0, 100)));
        assert!(zipf_record_key(7, 100).starts_with(b"user"));
    }

    #[test]
    fn d_inserts_and_reads_latest() {
        let mut dev = KvssdDevice::rhik(DeviceConfig::small());
        let d = run(&mut dev, YcsbPreset::D, &small()).unwrap();
        assert!(d.puts > 0, "D inserts ~5%");
        assert!(d.puts < d.ops / 10);
        assert_eq!(d.errors, 0);
    }
}
