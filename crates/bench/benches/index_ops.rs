//! Criterion micro-benchmarks: real CPU cost of the core structures.
//!
//! These complement the simulated-time figure harnesses: Criterion numbers
//! are host wall-clock for the firmware data structures themselves
//! (hashing, hopscotch tables, page codecs, cache, index ops, resize
//! migration, device put/get path).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rhik_baseline::{MultiLevelConfig, MultiLevelIndex};
use rhik_core::{RecordTable, RhikConfig, RhikIndex};
use rhik_ftl::cache::IndexPageCache;
use rhik_ftl::layout::PageBuilder;
use rhik_ftl::{Ftl, FtlConfig, IndexBackend};
use rhik_kvssd::{DeviceConfig, KvssdDevice};
use rhik_nand::{NandGeometry, Ppa};
use rhik_sigs::{murmur2_64a, murmur3_x64_128, KeySignature, SigHasher};
use std::hint::black_box;

fn mix(n: u64) -> KeySignature {
    let mut z = n.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    KeySignature(z ^ (z >> 31))
}

fn bench_hashing(c: &mut Criterion) {
    let mut g = c.benchmark_group("hashing");
    for len in [16usize, 128, 1024] {
        let key = vec![0xabu8; len];
        g.throughput(Throughput::Bytes(len as u64));
        g.bench_function(format!("murmur2_64a/{len}B"), |b| {
            b.iter(|| murmur2_64a(black_box(&key), 7))
        });
        g.bench_function(format!("murmur3_128/{len}B"), |b| {
            b.iter(|| murmur3_x64_128(black_box(&key), 7))
        });
    }
    g.finish();
}

fn bench_hopscotch_table(c: &mut Criterion) {
    let records = RhikConfig::records_per_table(32 * 1024);
    let mut g = c.benchmark_group("record_table");

    g.bench_function("insert_to_80pct", |b| {
        b.iter_batched(
            || RecordTable::new(records, 32),
            |mut t| {
                for i in 0..(records as u64 * 8 / 10) {
                    let _ = t.insert(mix(i), Ppa::new(0, 0));
                }
                t
            },
            BatchSize::SmallInput,
        )
    });

    let mut table = RecordTable::new(records, 32);
    for i in 0..(records as u64 * 8 / 10) {
        let _ = table.insert(mix(i), Ppa::new(0, 0));
    }
    g.bench_function("lookup_hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % (records as u64 * 8 / 10);
            black_box(table.lookup(mix(i)))
        })
    });
    g.bench_function("lookup_miss", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(table.lookup(mix(1_000_000_000 + i)))
        })
    });
    g.bench_function("to_page_32k", |b| b.iter(|| black_box(table.to_page(32 * 1024))));
    let page = table.to_page(32 * 1024);
    g.bench_function("from_page_32k", |b| {
        b.iter(|| black_box(RecordTable::from_page(&page, records, 32)))
    });
    g.finish();
}

fn bench_layout(c: &mut Criterion) {
    let mut g = c.benchmark_group("page_layout");
    g.bench_function("pack_64_pairs_4k", |b| {
        b.iter(|| {
            let mut builder = PageBuilder::new(4096);
            for i in 0..64u64 {
                if !builder.fits(16, 24) {
                    break;
                }
                builder.append_pair(mix(i), b"bench-key-16byte", &[1u8; 24], 0);
            }
            black_box(builder.finish())
        })
    });
    let mut builder = PageBuilder::new(4096);
    for i in 0..64u64 {
        if !builder.fits(16, 24) {
            break;
        }
        builder.append_pair(mix(i), b"bench-key-16byte", &[1u8; 24], 0);
    }
    let page = builder.finish();
    g.bench_function("decode_64_pairs_4k", |b| {
        b.iter(|| black_box(rhik_ftl::layout::decode_head(&page, 4096)))
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("index_page_cache");
    g.bench_function("hit", |b| {
        let mut cache = IndexPageCache::new(1 << 20);
        for k in 0..32u64 {
            cache.insert(k, bytes::Bytes::from(vec![0u8; 4096]), false);
        }
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 1) % 32;
            black_box(cache.get(k))
        })
    });
    g.bench_function("insert_evict", |b| {
        let mut cache = IndexPageCache::new(64 * 4096);
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            black_box(cache.insert(k, bytes::Bytes::from(vec![0u8; 4096]), k.is_multiple_of(2)))
        })
    });
    g.finish();
}

fn bench_ftl() -> Ftl {
    Ftl::new(FtlConfig {
        geometry: NandGeometry {
            blocks: 4096,
            pages_per_block: 64,
            page_size: 4096,
            spare_size: 128,
            channels: 4,
        },
        ..FtlConfig::tiny()
    })
}

fn bench_index_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("index_ops");
    g.sample_size(20);

    g.bench_function("rhik_insert_10k", |b| {
        b.iter_batched(
            || (bench_ftl(), RhikIndex::new(RhikConfig::default(), 4096)),
            |(mut ftl, mut idx)| {
                for i in 0..10_000u64 {
                    idx.insert(&mut ftl, mix(i), Ppa::new(0, 0)).unwrap();
                }
                (ftl, idx)
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("multilevel_insert_10k", |b| {
        b.iter_batched(
            || {
                (
                    bench_ftl(),
                    MultiLevelIndex::new(MultiLevelConfig::default(), 4096),
                )
            },
            |(mut ftl, mut idx)| {
                for i in 0..10_000u64 {
                    idx.insert(&mut ftl, mix(i), Ppa::new(0, 0)).unwrap();
                }
                (ftl, idx)
            },
            BatchSize::LargeInput,
        )
    });

    let mut ftl = bench_ftl();
    let mut idx = RhikIndex::new(RhikConfig::default(), 4096);
    for i in 0..50_000u64 {
        idx.insert(&mut ftl, mix(i), Ppa::new(0, 0)).unwrap();
    }
    g.bench_function("rhik_lookup_warm", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 50_000;
            black_box(idx.lookup(&mut ftl, mix(i)).unwrap())
        })
    });
    g.finish();
}

fn bench_device_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("device");
    g.sample_size(20);
    let mut dev = KvssdDevice::rhik(DeviceConfig::small());
    let mut i = 0u64;
    g.bench_function("put_256B", |b| {
        b.iter(|| {
            i += 1;
            // Overwrite a rolling window so the device never fills.
            let key = format!("bench-{:08}", i % 10_000);
            dev.put(key.as_bytes(), &[7u8; 256]).unwrap();
        })
    });
    g.bench_function("get_hit_256B", |b| {
        let mut j = 0u64;
        b.iter(|| {
            j = (j + 1) % (i % 10_000).max(1);
            let key = format!("bench-{j:08}");
            black_box(dev.get(key.as_bytes()).unwrap())
        })
    });
    g.bench_function("exist_signature_only", |b| {
        let mut j = 0u64;
        b.iter(|| {
            j += 1;
            let key = format!("bench-{:08}", j % 20_000);
            black_box(dev.exist(key.as_bytes()).unwrap())
        })
    });
    g.finish();
}

fn bench_hasher_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("sig_hasher");
    let key = b"dispatch-bench-key";
    for hasher in [
        SigHasher::Murmur2 { seed: 1 },
        SigHasher::Murmur3Folded { seed: 1 },
        SigHasher::Fnv1a { seed: 1 },
    ] {
        g.bench_function(format!("{hasher:?}"), |b| b.iter(|| hasher.sign(black_box(key))));
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_hashing,
    bench_hopscotch_table,
    bench_layout,
    bench_cache,
    bench_index_ops,
    bench_device_path,
    bench_hasher_dispatch,
);
criterion_main!(benches);
