//! Shared scaffolding for the experiment harness.
//!
//! One binary per paper table/figure lives in `src/bin/`. This library
//! provides the common pieces: an aligned table printer, scaled experiment
//! presets, and JSON result emission so EXPERIMENTS.md numbers are
//! regenerable.

use std::fmt::Write as _;

/// Render rows as an aligned ASCII table (first row = header).
pub fn render_table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(Vec::len).max().expect("nonempty");
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for (r, row) in rows.iter().enumerate() {
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let pad = widths[i] - cell.chars().count();
            out.push_str(cell);
            out.extend(std::iter::repeat_n(' ', pad));
        }
        // Trim trailing padding for clean diffs.
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
        if r == 0 {
            for (i, w) in widths.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{}", "-".repeat(*w));
            }
            out.push('\n');
        }
    }
    out
}

/// Human-readable byte size.
pub fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.1} {}", UNITS[unit])
    }
}

/// Experiment scale: every figure binary supports `--scale small|full`
/// (small = CI-friendly, full = closer to the paper's magnitudes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    Small,
    Full,
}

impl Scale {
    /// Parse from argv; defaults to `Small`.
    pub fn from_args() -> Scale {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if a == "--scale" {
                match args.next().as_deref() {
                    Some("full") => return Scale::Full,
                    Some("small") | None => return Scale::Small,
                    Some(other) => panic!("unknown scale {other}; use small|full"),
                }
            }
            if let Some(v) = a.strip_prefix("--scale=") {
                return match v {
                    "full" => Scale::Full,
                    "small" => Scale::Small,
                    other => panic!("unknown scale {other}; use small|full"),
                };
            }
        }
        Scale::Small
    }

    /// Pick a value by scale.
    pub fn pick<T>(self, small: T, full: T) -> T {
        match self {
            Scale::Small => small,
            Scale::Full => full,
        }
    }
}

/// Whether `--trace-dump` was passed: figure binaries attach an enabled
/// telemetry sink to an extra instrumented run and emit per-stage
/// attribution JSON next to their normal results.
pub fn trace_dump_requested() -> bool {
    std::env::args().skip(1).any(|a| a == "--trace-dump")
}

/// Whether `--audit` was passed: bench binaries run the cross-layer
/// [`rhik_audit::DeviceAuditor`] at checkpoints during the workload and
/// abort on the first invariant violation, trading throughput for a
/// full-state consistency proof of the exact configuration being measured.
pub fn audit_requested() -> bool {
    std::env::args().skip(1).any(|a| a == "--audit")
}

/// Audit checkpoint for bench loops: every `ops` per-device operations
/// (and once more on the final op), walk the whole cross-layer state and
/// panic with the violation list if anything disagrees. No-op when
/// `enabled` is false so measured runs stay unperturbed.
pub struct BenchAuditor {
    auditor: rhik_audit::DeviceAuditor,
    every: u64,
    seen: u64,
    pub audits_run: u64,
    enabled: bool,
}

impl BenchAuditor {
    pub fn new(enabled: bool, every: u64) -> Self {
        BenchAuditor {
            auditor: rhik_audit::DeviceAuditor::new(),
            every: every.max(1),
            seen: 0,
            audits_run: 0,
            enabled,
        }
    }

    /// Count one op; audit the device when the checkpoint interval fires
    /// or `last` marks the end of the workload.
    pub fn tick(&mut self, dev: &rhik_kvssd::KvssdDevice<rhik_core::RhikIndex>, last: bool) {
        if !self.enabled {
            return;
        }
        self.seen += 1;
        if self.seen.is_multiple_of(self.every) || last {
            let report = dev.audit(&mut self.auditor);
            assert!(report.is_ok(), "--audit found invariant violations:\n{report}");
            self.audits_run += 1;
        }
    }
}

/// Per-stage latency attribution as a JSON blob (only stages that fired).
pub fn attribution_json(attr: &rhik_telemetry::Attribution) -> serde_json::Value {
    let mut stages: Vec<serde_json::Value> = Vec::new();
    for stage in rhik_telemetry::Stage::ALL {
        let row = attr.row(stage);
        if row.events == 0 {
            continue;
        }
        stages.push(serde_json::json!({
            "stage": stage.name(),
            "events": row.events,
            "total_ns": row.total_ns,
            "mean_ns": row.mean_ns(),
            "share_pct": attr.share_pct(stage),
        }));
    }
    serde_json::json!({
        "ops": attr.ops,
        "total_stage_ns": attr.total_stage_ns,
        "distinct_stages": attr.distinct_stages() as u64,
        "stages": stages,
    })
}

/// Traced flash-reads-per-lookup distribution as a JSON blob (the live
/// ≤ 1-read invariant check).
pub fn reads_per_lookup_json(rpl: &rhik_telemetry::ReadsPerLookup) -> serde_json::Value {
    serde_json::json!({
        "lookups": rpl.lookups,
        "max_reads": rpl.max,
        "invariant_ok": rpl.invariant_ok(),
        "pct_within_1_read": rpl.pct_within(1),
        "histo": rpl.histo.to_vec(),
    })
}

/// Render per-stage attribution as an aligned table (printed by the
/// `--trace-dump` modes and `obs_overhead`).
pub fn attribution_table(attr: &rhik_telemetry::Attribution) -> String {
    let mut rows = vec![vec![
        "stage".to_string(),
        "events".to_string(),
        "total ms".to_string(),
        "mean µs".to_string(),
        "share %".to_string(),
    ]];
    for stage in rhik_telemetry::Stage::ALL {
        let row = attr.row(stage);
        if row.events == 0 {
            continue;
        }
        rows.push(vec![
            stage.name().to_string(),
            row.events.to_string(),
            format!("{:.3}", row.total_ns as f64 / 1e6),
            format!("{:.2}", row.mean_ns() / 1e3),
            format!("{:.1}", attr.share_pct(stage)),
        ]);
    }
    render_table(&rows)
}

/// Write a JSON result blob next to the binary output for EXPERIMENTS.md.
pub fn emit_json(experiment: &str, value: &serde_json::Value) {
    let dir = std::path::Path::new("target/experiments");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{experiment}.json"));
        if let Ok(s) = serde_json::to_string_pretty(value) {
            let _ = std::fs::write(&path, s);
            eprintln!("[wrote {}]", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let rows = vec![
            vec!["name".into(), "value".into()],
            vec!["a".into(), "1".into()],
            vec!["long-name".into(), "123456".into()],
        ];
        let t = render_table(&rows);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("----"));
        let off0 = lines[0].find("value").unwrap();
        let off2 = lines[2].find('1').unwrap();
        assert_eq!(off0, off2);
    }

    #[test]
    fn empty_table() {
        assert_eq!(render_table(&[]), "");
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert_eq!(fmt_bytes(10 << 20), "10.0 MiB");
    }

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Small.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
    }
}
