//! Shared scaffolding for the experiment harness.
//!
//! One binary per paper table/figure lives in `src/bin/`. This library
//! provides the common pieces: an aligned table printer, scaled experiment
//! presets, and JSON result emission so EXPERIMENTS.md numbers are
//! regenerable.

use std::fmt::Write as _;

/// Render rows as an aligned ASCII table (first row = header).
pub fn render_table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(Vec::len).max().expect("nonempty");
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for (r, row) in rows.iter().enumerate() {
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let pad = widths[i] - cell.chars().count();
            out.push_str(cell);
            out.extend(std::iter::repeat_n(' ', pad));
        }
        // Trim trailing padding for clean diffs.
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
        if r == 0 {
            for (i, w) in widths.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{}", "-".repeat(*w));
            }
            out.push('\n');
        }
    }
    out
}

/// Human-readable byte size.
pub fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.1} {}", UNITS[unit])
    }
}

/// Experiment scale: every figure binary supports `--scale small|full`
/// (small = CI-friendly, full = closer to the paper's magnitudes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    Small,
    Full,
}

impl Scale {
    /// Parse from argv; defaults to `Small`.
    pub fn from_args() -> Scale {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if a == "--scale" {
                match args.next().as_deref() {
                    Some("full") => return Scale::Full,
                    Some("small") | None => return Scale::Small,
                    Some(other) => panic!("unknown scale {other}; use small|full"),
                }
            }
            if let Some(v) = a.strip_prefix("--scale=") {
                return match v {
                    "full" => Scale::Full,
                    "small" => Scale::Small,
                    other => panic!("unknown scale {other}; use small|full"),
                };
            }
        }
        Scale::Small
    }

    /// Pick a value by scale.
    pub fn pick<T>(self, small: T, full: T) -> T {
        match self {
            Scale::Small => small,
            Scale::Full => full,
        }
    }
}

/// Write a JSON result blob next to the binary output for EXPERIMENTS.md.
pub fn emit_json(experiment: &str, value: &serde_json::Value) {
    let dir = std::path::Path::new("target/experiments");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{experiment}.json"));
        if let Ok(s) = serde_json::to_string_pretty(value) {
            let _ = std::fs::write(&path, s);
            eprintln!("[wrote {}]", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let rows = vec![
            vec!["name".into(), "value".into()],
            vec!["a".into(), "1".into()],
            vec!["long-name".into(), "123456".into()],
        ];
        let t = render_table(&rows);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("----"));
        let off0 = lines[0].find("value").unwrap();
        let off2 = lines[2].find('1').unwrap();
        assert_eq!(off0, off2);
    }

    #[test]
    fn empty_table() {
        assert_eq!(render_table(&[]), "");
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert_eq!(fmt_bytes(10 << 20), "10.0 MiB");
    }

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Small.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
    }
}
