//! Ablations over RHIK's design choices (§IV / §VI discussion points).
//!
//! 1. **hopinfo width** — hop neighborhood H vs insert-abort rate at the
//!    default 80 % occupancy threshold (§IV-A1 picks H = 32).
//! 2. **cache budget** — FTL DRAM sweep vs lookup miss rate for RHIK and
//!    the multi-level baseline (generalizes Fig. 5a).
//! 3. **signature bits** — truncated signatures vs `exist` false-positive
//!    rate (§IV-A3's 64- vs 128-bit discussion, birthday bound included).
//! 4. **resize threshold** — occupancy trigger vs space headroom and
//!    resize count (§V-C: 80 % is the knee).
//!
//! ```sh
//! cargo run -p rhik-bench --release --bin ablations [--scale full]
//! ```

use rhik_baseline::MultiLevelConfig;
use rhik_bench::{fmt_bytes, render_table, Scale};
use rhik_core::{RecordTable, RhikConfig, RhikIndex, TableInsert};
use rhik_ftl::{Ftl, FtlConfig, GcConfig, IndexBackend, IndexError};
use rhik_kvssd::{DeviceConfig, EngineMode, KvssdDevice};
use rhik_nand::{DeviceProfile, NandGeometry, Ppa};
use rhik_sigs::{estimate, KeySignature, SigHasher};
use rhik_workloads::driver::WorkloadDriver;
use rhik_workloads::ibm;

fn mix(n: u64) -> KeySignature {
    let mut z = n.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    KeySignature(z ^ (z >> 31))
}

/// 1. Hop width vs abort rate on page-sized tables at fixed target fill.
fn ablate_hopinfo(scale: Scale) {
    println!("=== ablation 1: hopscotch hop width (tables of 1927 records) ===\n");
    let tables: usize = scale.pick(200, 2_000);
    let records = RhikConfig::records_per_table(32 * 1024);
    let target_fill = 0.80;

    let mut rows = vec![vec![
        "hop width".to_string(),
        "inserts".to_string(),
        "aborts".to_string(),
        "abort %".to_string(),
    ]];
    for hop in [4u32, 8, 16, 32] {
        let mut aborts = 0u64;
        let mut inserts = 0u64;
        let per_table = (records as f64 * target_fill) as u64;
        for t in 0..tables as u64 {
            let mut table = RecordTable::new(records, hop);
            for i in 0..per_table {
                match table.insert(mix(t * 1_000_000 + i), Ppa::new(0, 0)) {
                    TableInsert::Inserted => inserts += 1,
                    TableInsert::Full => aborts += 1,
                    TableInsert::Updated { .. } => {}
                }
            }
        }
        rows.push(vec![
            hop.to_string(),
            inserts.to_string(),
            aborts.to_string(),
            format!("{:.4}", 100.0 * aborts as f64 / (inserts + aborts) as f64),
        ]);
    }
    print!("{}", render_table(&rows));
    println!("\nwider hop neighborhoods absorb clustering; H=32 (the paper default)");
    println!("keeps aborts negligible at the 80% trigger point.\n");
}

/// 2. Cache budget sweep vs per-lookup miss rate, both indexes.
fn ablate_cache(scale: Scale) {
    println!("=== ablation 2: FTL cache budget (cluster 096 workload) ===\n");
    let cluster = ibm::clusters().into_iter().find(|c| c.name == "096").expect("exists");
    let base_cache: u64 = scale.pick(64 << 10, 512 << 10);
    let ops = scale.pick(4_000, 20_000);

    // Fix the workload at the base budget; sweep only the device cache.
    let (load, population) = cluster.synthesize(base_cache, 17, 0, 0.002, 42);
    let (run, _) = cluster.synthesize(base_cache, 17, ops, 0.002, 43);
    let run_tail = &run[population as usize..];

    let mut rows = vec![vec![
        "cache".to_string(),
        "rhik miss %".to_string(),
        "multilevel miss %".to_string(),
        "multilevel avg reads".to_string(),
    ]];
    for factor in [1u64, 2, 4, 8, 16] {
        let cache = (base_cache * factor / 4) as usize;
        let cfg = DeviceConfig {
            geometry: NandGeometry {
                blocks: scale.pick(512, 2048),
                pages_per_block: 64,
                page_size: 4096,
                spare_size: 128,
                channels: 4,
            },
            profile: DeviceProfile::instant(),
            cache_budget_bytes: cache,
            gc: GcConfig { low_watermark: 3, high_watermark: 6, ..Default::default() },
            gc_reserve_blocks: 2,
            shards: 1,
            engine: EngineMode::Sync,
            hasher: SigHasher::default(),
            rhik: rhik_core::RhikConfig::default(),
            hot_cache: rhik_kvssd::CacheConfig::off(),
        };

        let mut rhik_dev = KvssdDevice::rhik(cfg);
        WorkloadDriver::replay(&mut rhik_dev, &load).expect("load");
        let before = rhik_dev.index().stats().clone();
        WorkloadDriver::replay(&mut rhik_dev, run_tail).expect("run");
        let rhik_miss = delta_miss(&before, rhik_dev.index().stats());

        let mut ml_dev = KvssdDevice::multilevel(
            cfg,
            MultiLevelConfig { initial_bits: 1, max_levels: 8, hop_width: 32 },
        );
        WorkloadDriver::replay(&mut ml_dev, &load).expect("load");
        let before = ml_dev.index().stats().clone();
        WorkloadDriver::replay(&mut ml_dev, run_tail).expect("run");
        let ms = ml_dev.index().stats();
        let ml_miss = delta_miss(&before, ms);
        let lookups = ms.lookups - before.lookups;
        let reads = ms.metadata_flash_reads - before.metadata_flash_reads;

        rows.push(vec![
            fmt_bytes(cache as u64),
            format!("{rhik_miss:.1}"),
            format!("{ml_miss:.1}"),
            format!("{:.2}", reads as f64 / lookups.max(1) as f64),
        ]);
    }
    print!("{}", render_table(&rows));
    println!("\nboth schemes converge to ~0% once the index fits; below that point the");
    println!("multi-level index pays multiple reads per miss while RHIK pays exactly one.\n");
}

fn delta_miss(before: &rhik_ftl::IndexStats, after: &rhik_ftl::IndexStats) -> f64 {
    let d0 = after.reads_per_lookup_histo[0] - before.reads_per_lookup_histo[0];
    let total: u64 = after
        .reads_per_lookup_histo
        .iter()
        .zip(before.reads_per_lookup_histo.iter())
        .map(|(a, b)| a - b)
        .sum();
    if total == 0 {
        0.0
    } else {
        100.0 * (total - d0) as f64 / total as f64
    }
}

/// 3. Signature width vs `exist` false positives.
fn ablate_sig_bits(scale: Scale) {
    println!("=== ablation 3: signature resolution vs membership accuracy ===\n");
    let n: u64 = scale.pick(2_000_000, 20_000_000);
    let probes: u64 = scale.pick(1_000_000, 5_000_000);
    let hasher = SigHasher::default();

    let mut rows = vec![vec![
        "sig bits".to_string(),
        "stored".to_string(),
        "false positives".to_string(),
        "measured FP %".to_string(),
        "birthday-bound FP %".to_string(),
    ]];
    for bits in [16u32, 24, 32, 48, 64] {
        let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
        let mut set = std::collections::HashSet::with_capacity(n as usize);
        for i in 0..n {
            set.insert(hasher.sign(format!("member-{i:012}").as_bytes()).0 & mask);
        }
        let mut fp = 0u64;
        for i in 0..probes {
            let sig = hasher.sign(format!("absent-{i:012}").as_bytes()).0 & mask;
            if set.contains(&sig) {
                fp += 1;
            }
        }
        // For a non-member probe, P(collision) ≈ n / 2^bits.
        let expected = 100.0 * (n as f64) / (bits as f64).exp2();
        rows.push(vec![
            bits.to_string(),
            n.to_string(),
            fp.to_string(),
            format!("{:.4}", 100.0 * fp as f64 / probes as f64),
            format!("{expected:.4}"),
        ]);
    }
    print!("{}", render_table(&rows));
    println!(
        "\nat 64 bits the measured rate is ~0 (expected {:.2e}%): signature-only\n\
         membership is safe, and 128-bit signatures (§IV-A3) are only needed\n\
         when even full-key re-verification must be avoided.\n",
        100.0 * n as f64 / 64f64.exp2()
    );
    let _ = estimate::expected_collision_pct(n, 64);
}

/// 4. Resize threshold vs resize count / headroom / aborts.
fn ablate_resize_threshold(scale: Scale) {
    println!("=== ablation 4: occupancy threshold (§V-C) ===\n");
    let keys: u64 = scale.pick(200_000, 2_000_000);
    let mut rows = vec![vec![
        "threshold".to_string(),
        "resizes".to_string(),
        "final occupancy %".to_string(),
        "capacity headroom x".to_string(),
        "insert aborts".to_string(),
        "aborts w/ hyper-local".to_string(),
    ]];
    for threshold in [0.60, 0.70, 0.80, 0.90, 0.95] {
        let mut cells = Vec::new();
        let mut meta = (0usize, 0.0f64, 0.0f64);
        for hyper_local in [false, true] {
            let geometry = NandGeometry::paper_default(scale.pick(1u64 << 30, 4u64 << 30));
            let mut ftl = Ftl::new(FtlConfig {
                geometry,
                profile: DeviceProfile::instant(),
                cache_budget_bytes: 16 << 20,
                gc_reserve_blocks: 2,
            });
            let mut idx = RhikIndex::new(
                RhikConfig {
                    initial_dir_bits: 0,
                    occupancy_threshold: threshold,
                    dir_flush_interval: u64::MAX / 2,
                    hyper_local,
                    ..Default::default()
                },
                geometry.page_size,
            );
            let hasher = SigHasher::default();
            let mut aborts = 0u64;
            for i in 0..keys {
                let sig = hasher.sign(format!("abl4-{i:012}").as_bytes());
                match idx.insert(&mut ftl, sig, Ppa::new(0, 0)) {
                    Ok(_) => {}
                    Err(IndexError::TableFull { .. }) => aborts += 1,
                    Err(e) => panic!("unexpected: {e}"),
                }
                if idx.maintenance_due() {
                    idx.maintain(&mut ftl).expect("maintain");
                }
            }
            cells.push(aborts);
            if !hyper_local {
                meta = (
                    idx.stats().resizes.len(),
                    idx.occupancy() * 100.0,
                    idx.total_capacity() as f64 / keys as f64,
                );
            }
        }
        rows.push(vec![
            format!("{:.0}%", threshold * 100.0),
            meta.0.to_string(),
            format!("{:.1}", meta.1),
            format!("{:.2}", meta.2),
            cells[0].to_string(),
            cells[1].to_string(),
        ]);
    }
    print!("{}", render_table(&rows));
    println!("\nlow thresholds waste capacity (headroom >> 1) and resize early; above");
    println!("~80% the hopscotch tables start aborting inserts before the global");
    println!("trigger fires — the paper's knee. §VI's hyper-local scaling (last");
    println!("column) absorbs those rejects in per-bucket overflow tables at the");
    println!("cost of a possible second flash read for overflowed buckets.\n");
}

/// 5. GC victim policy: greedy vs cost-benefit under update churn.
fn ablate_gc_policy(scale: Scale) {
    println!("=== ablation 5: GC victim policy (update churn) ===\n");
    let rounds: u64 = scale.pick(12, 30);
    let keys: u64 = scale.pick(400, 1200);

    let mut rows = vec![vec![
        "policy".to_string(),
        "gc runs".to_string(),
        "blocks erased".to_string(),
        "pairs relocated".to_string(),
        "write amp".to_string(),
        "wear (min/max/mean)".to_string(),
    ]];
    for policy in [rhik_ftl::GcPolicy::Greedy, rhik_ftl::GcPolicy::CostBenefit] {
        let mut cfg = DeviceConfig::small();
        cfg.gc = GcConfig { low_watermark: 3, high_watermark: 6, policy, ..Default::default() };
        let mut dev = KvssdDevice::rhik(cfg);
        let value = vec![0u8; 8 << 10];
        // Load once, then overwrite with Zipfian skew so blocks end up with
        // mixed live/stale contents — the regime where victim policies
        // actually differ (uniform overwrites make every victim fully
        // stale and the policies coincide).
        for i in 0..keys {
            dev.put(format!("churn-{i:06}").as_bytes(), &value).expect("load");
        }
        let zipf = rhik_workloads::ZipfSampler::new(keys, 0.99);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
        for round in 0..rounds * keys {
            let i = zipf.sample(&mut rng);
            let mut v = value.clone();
            v[0] = round as u8;
            dev.put(format!("churn-{i:06}").as_bytes(), &v).expect("put");
        }
        let logical = (rounds + 1) * keys * value.len() as u64;
        let physical = dev.ftl().nand_stats().bytes_programmed;
        let f = dev.ftl().stats();
        let (wmin, wmax, wmean) = dev.ftl().wear_stats();
        rows.push(vec![
            format!("{policy:?}"),
            f.gc_runs.to_string(),
            f.gc_erased_blocks.to_string(),
            f.gc_relocated_pairs.to_string(),
            format!("{:.3}", physical as f64 / logical as f64),
            format!("{wmin}/{wmax}/{wmean:.1}"),
        ]);
    }
    print!("{}", render_table(&rows));
    println!("\nwith blocks this small the top victim usually coincides under both");
    println!("rankings (write amp ~1.06 either way); the policies diverge when block");
    println!("liveness is strongly bimodal — see gc::tests::cost_benefit_prefers_");
    println!("cheap_victims for the mechanism.\n");
}

fn main() {
    let scale = Scale::from_args();
    let only = std::env::args().skip(1).find_map(|a| a.strip_prefix("--only=").map(String::from));
    let want = |name: &str| only.as_deref().is_none_or(|o| o == name);
    if want("hopinfo") {
        ablate_hopinfo(scale);
    }
    if want("cache") {
        ablate_cache(scale);
    }
    if want("sigbits") {
        ablate_sig_bits(scale);
    }
    if want("threshold") {
        ablate_resize_threshold(scale);
    }
    if want("gcpolicy") {
        ablate_gc_policy(scale);
    }
}
