//! Fig. 7 — rate of change of the resizing time while doubling index
//! capacity.
//!
//! Grows a RHIK index from a single record-layer table through ~a dozen
//! doublings, recording each migration's cost. The paper reports the rate
//! of change staying <= 1: doubling the index doubles the resize time but
//! no worse (resize cost is linear in index size), e.g. 5 ms at 11 M keys
//! -> 172 ms at 345 M keys. We sweep the same shape at emulator scale; the
//! "rate of change" column is (T_i / T_{i-1}) / (size_i / size_{i-1}) and
//! should hover around (or below) 1.0.
//!
//! ```sh
//! cargo run -p rhik-bench --release --bin fig7 [--scale full]
//! ```

use rhik_bench::{render_table, Scale};
use rhik_core::{RhikConfig, RhikIndex};
use rhik_ftl::{Ftl, FtlConfig, IndexBackend};
use rhik_nand::{DeviceProfile, NandGeometry, Ppa};
use rhik_sigs::KeySignature;

fn mix(n: u64) -> KeySignature {
    let mut z = n.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    KeySignature(z ^ (z >> 31))
}

fn main() {
    let scale = Scale::from_args();
    // Keys to insert: enough for ~12 (small) or ~16 (full) doublings at
    // 1927 records/table and 80% trigger.
    let target_keys: u64 = scale.pick(2_000_000, 16_000_000);

    // Index pages only — no KV data — so the device holds just metadata.
    // 32 KiB pages as in the paper. Capacity bounds *host* memory too (the
    // emulator keeps programmed pages resident until erased), so it is
    // sized to a few times the final index footprint and GC watermarks keep
    // the stale backlog in check.
    let geometry = NandGeometry::paper_default(scale.pick(2u64 << 30, 4u64 << 30));
    let mut ftl = Ftl::new(FtlConfig {
        geometry,
        profile: DeviceProfile::kvemu_like(),
        cache_budget_bytes: 64 << 20, // ample: resize cost, not caching, is measured
        gc_reserve_blocks: 2,
    });
    let mut idx = RhikIndex::new(
        // Paper-fidelity Fig. 7: measure the monolithic doubling cost, so
        // keep the stop-the-world resize rather than the incremental one.
        RhikConfig {
            initial_dir_bits: 0,
            dir_flush_interval: u64::MAX / 2,
            stop_the_world: true,
            ..Default::default()
        },
        geometry.page_size,
    );

    eprintln!("growing index to {target_keys} keys...");
    let gc_cfg = rhik_ftl::GcConfig {
        low_watermark: scale.pick(8, 160),
        high_watermark: scale.pick(16, 320),
        ..Default::default()
    };
    let mut aborts = 0u64;
    for i in 0..target_keys {
        match idx.insert(&mut ftl, mix(i), Ppa::new(0, 0)) {
            Ok(_) => {}
            // The paper's infrequent hopscotch abort (§IV-A1): at tens of
            // millions of inserts a few tables hit their hop limit just
            // below the global trigger. The device rejects the key; the
            // harness counts and moves on.
            Err(rhik_ftl::IndexError::TableFull { .. }) => aborts += 1,
            Err(e) => panic!("insert: {e}"),
        }
        if idx.maintenance_due() {
            match idx.maintain(&mut ftl) {
                Ok(()) => {}
                Err(rhik_ftl::IndexError::NeedsGc) => {
                    rhik_ftl::gc::run(&mut ftl, &mut idx, &gc_cfg).expect("gc");
                    let _ = idx.maintain(&mut ftl);
                }
                Err(e) => panic!("maintain: {e}"),
            }
        }
        // Reclaim retired table pages periodically; without GC the host
        // memory holding superseded pages grows unboundedly at full scale.
        if i % 50_000 == 0 && rhik_ftl::gc::should_run(&ftl, &gc_cfg) {
            rhik_ftl::gc::run(&mut ftl, &mut idx, &gc_cfg).expect("gc");
        }
    }
    if aborts > 0 {
        eprintln!("({aborts} hopscotch aborts across {target_keys} inserts — the paper's \"not frequent\" rejects)");
    }

    let events = idx.stats().resizes.clone();
    let mut rows = vec![vec![
        "keys before (M)".to_string(),
        "tables".to_string(),
        "media ms".to_string(),
        "cpu ms".to_string(),
        "growth x".to_string(),
        "rate of change".to_string(),
    ]];
    let mut rates = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let (growth, rate) = if i == 0 {
            (f64::NAN, f64::NAN)
        } else {
            let prev = &events[i - 1];
            let growth = ev.media_ns as f64 / prev.media_ns.max(1) as f64;
            let size_growth = ev.tables_before as f64 / prev.tables_before.max(1) as f64;
            (growth, growth / size_growth)
        };
        if !rate.is_nan() {
            rates.push(rate);
        }
        rows.push(vec![
            format!("{:.3}", ev.keys_before as f64 / 1e6),
            ev.tables_before.to_string(),
            format!("{:.3}", ev.media_ns as f64 / 1e6),
            format!("{:.3}", ev.cpu_ns as f64 / 1e6),
            if growth.is_nan() { "-".into() } else { format!("{growth:.2}") },
            if rate.is_nan() { "-".into() } else { format!("{rate:.2}") },
        ]);
    }
    println!("=== Fig. 7: resizing-time growth while doubling capacity ===\n");
    print!("{}", render_table(&rows));

    let tail_rates = &rates[rates.len().saturating_sub(6)..];
    let max_tail = tail_rates.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "\n{} resizes; steady-state rate of change (last {} doublings) peaks at {:.2} \
         — {} (paper: mostly <= 1).",
        events.len(),
        tail_rates.len(),
        max_tail,
        if max_tail <= 1.3 { "linear scaling holds" } else { "SUPER-LINEAR — shape mismatch" },
    );

    rhik_bench::emit_json(
        "fig7",
        &serde_json::json!({
            "target_keys": target_keys,
            "resizes": events.iter().map(|e| serde_json::json!({
                "keys_before": e.keys_before,
                "tables_before": e.tables_before,
                "media_ns": e.media_ns,
                "cpu_ns": e.cpu_ns,
                "flash_reads": e.flash_reads,
                "flash_programs": e.flash_programs,
            })).collect::<Vec<_>>(),
            "max_tail_rate": max_tail,
        }),
    );
}
