//! Fig. 2 — motivation: write bandwidth collapses as the (Samsung-style)
//! multi-level hash index outgrows the SSD DRAM cache.
//!
//! Four panels, small values to tiny values: (a) few keys — the index fits
//! DRAM and bandwidth holds to full utilization; (b)-(d) progressively more
//! keys — the index outgrows the cache, every store pays multi-level flash
//! probes, and bandwidth drops. The vertical lines of the paper (index
//! growth points) are reported as the utilizations where a new level was
//! appended.
//!
//! Scaled per DESIGN.md: the shape (who degrades, when) is the deliverable,
//! not the absolute GB/s of a 3.84 TB device.
//!
//! ```sh
//! cargo run -p rhik-bench --release --bin fig2 [--scale full]
//! ```

use rhik_baseline::MultiLevelConfig;
use rhik_bench::{fmt_bytes, render_table, Scale};
use rhik_ftl::GcConfig;
use rhik_kvssd::{DeviceConfig, EngineMode, KvError, KvssdDevice};
use rhik_nand::{DeviceProfile, NandGeometry};
use rhik_sigs::SigHasher;

struct Panel {
    label: &'static str,
    value_bytes: usize,
}

fn main() {
    let scale = Scale::from_args();
    // Raw flash: 32 MiB blocks would be huge; use 4 KiB pages x 64/block so
    // the emulated device stays host-RAM friendly while the cache:index
    // ratios match the paper's regimes.
    let capacity: u64 = scale.pick(96 << 20, 512 << 20);
    let cache_budget: usize = scale.pick(48 << 10, 192 << 10);
    let pages_per_block: u32 = scale.pick(64, 256);
    let geometry = NandGeometry {
        blocks: (capacity / (pages_per_block as u64 * 4096)) as u32,
        pages_per_block,
        page_size: 4096,
        spare_size: 128,
        channels: 8,
    };

    let panels = [
        Panel {
            label: "(a) few keys, large values",
            value_bytes: scale.pick(128 << 10, 512 << 10),
        },
        Panel { label: "(b) more keys", value_bytes: scale.pick(32 << 10, 64 << 10) },
        Panel { label: "(c) many keys", value_bytes: scale.pick(4 << 10, 4 << 10) },
        Panel { label: "(d) key-count extreme", value_bytes: scale.pick(192, 192) },
    ];

    println!("=== Fig. 2: write bandwidth vs utilization (multi-level index) ===");
    println!(
        "device {} | cache {} | page {} | values per panel scaled from the paper's 2MB/32KB/2KB/11B\n",
        fmt_bytes(capacity),
        fmt_bytes(cache_budget as u64),
        fmt_bytes(geometry.page_size as u64),
    );

    let mut emitted = Vec::new();
    for panel in &panels {
        let cfg = DeviceConfig {
            geometry,
            profile: DeviceProfile::kvemu_like(),
            cache_budget_bytes: cache_budget,
            gc: GcConfig { low_watermark: 3, high_watermark: 6, ..Default::default() },
            gc_reserve_blocks: 2,
            shards: 1,
            engine: EngineMode::Async { queue_depth: 32 },
            hasher: SigHasher::default(),
            rhik: rhik_core::RhikConfig::default(),
            hot_cache: rhik_kvssd::CacheConfig::off(),
        };
        let mut dev = KvssdDevice::multilevel(
            cfg,
            MultiLevelConfig { initial_bits: 1, max_levels: 8, hop_width: 32 },
        );

        let value = vec![0x42u8; panel.value_bytes];
        let target_util = 0.85;
        let mut series: Vec<(f64, f64)> = Vec::new(); // (utilization, MB/s)
        let mut window_bytes = 0u64;
        let mut window_start = dev.elapsed_secs();
        let mut next_checkpoint = 0.05f64;
        let mut i = 0u64;
        let mut full = false;

        while dev.utilization() < target_util && !full {
            let key = format!("fig2-{}-{i:010}", panel.value_bytes);
            match dev.put(key.as_bytes(), &value) {
                Ok(()) => window_bytes += value.len() as u64,
                Err(KvError::DeviceFull) => full = true,
                Err(KvError::KeyRejected) | Err(KvError::KeyCollision) => {}
                Err(KvError::IndexFull) => full = true,
                Err(e) => panic!("unexpected: {e}"),
            }
            i += 1;
            if dev.utilization() >= next_checkpoint {
                let now = dev.elapsed_secs();
                let mbps = window_bytes as f64 / 1e6 / (now - window_start).max(1e-9);
                series.push((dev.utilization(), mbps));
                window_bytes = 0;
                window_start = now;
                next_checkpoint += 0.05;
            }
        }

        let peak = series.iter().map(|s| s.1).fold(0.0f64, f64::max);
        println!(
            "{} — {} keys, value {}",
            panel.label,
            dev.key_count(),
            fmt_bytes(panel.value_bytes as u64)
        );
        let growth: Vec<String> =
            dev.index().growth_points().iter().map(|k| format!("{k}")).collect();
        println!(
            "  index: {} levels (growth at keys: {})",
            dev.index().level_count(),
            if growth.is_empty() { "none".to_string() } else { growth.join(", ") }
        );
        let mut rows = vec![vec![
            "utilization".to_string(),
            "write MB/s (sim)".to_string(),
            "normalized".to_string(),
        ]];
        for (u, mbps) in &series {
            rows.push(vec![
                format!("{:.0}%", u * 100.0),
                format!("{mbps:.1}"),
                format!("{:.2}", mbps / peak),
            ]);
        }
        print!("{}", render_table(&rows));
        let last_norm = series.last().map(|s| s.1 / peak).unwrap_or(0.0);
        println!("  end-of-fill bandwidth = {:.2}x of peak\n", last_norm);
        emitted.push(serde_json::json!({
            "panel": panel.label,
            "value_bytes": panel.value_bytes,
            "keys": dev.key_count(),
            "levels": dev.index().level_count(),
            "growth_points": dev.index().growth_points(),
            "series": series.iter().map(|(u, m)| serde_json::json!({"util": u, "mbps": m})).collect::<Vec<_>>(),
        }));
    }

    println!("shape check: panel (a) should stay near 1.0 to the end; panels (b)-(d)");
    println!(
        "should sag progressively harder as the index outgrows the {} cache.",
        fmt_bytes(cache_budget as u64)
    );
    rhik_bench::emit_json("fig2", &serde_json::json!({ "panels": emitted }));
}
