//! Closed-loop loopback load generator for `rhik-server`.
//!
//! Measures the tentpole claim end to end: pipelined batching vs naive
//! one-op-per-RTT over real sockets, at 8 and 64 connections, zipf-0.99
//! key popularity — plus the multi-tenant admission experiment (a tenant
//! offered ~10x its quota must be held at the quota while an unlimited
//! tenant's tail latency stays within 2x of its solo baseline) and
//! optional YCSB A/B/C mixes generated over the wire from the same
//! presets `crates/workloads` runs in-process.
//!
//! Emits `BENCH_server.json` (repo root) + `target/experiments/
//! server_load.json`, then enforces the gates:
//!
//! * pipelined ≥ 2x naive ops/s at 64 connections
//! * capped tenant within ±10% of quota under 10x offered load
//! * unlimited tenant's mixed p99 ≤ 2x its solo p99
//! * device audit clean after shutdown
//!
//! `--smoke` runs a short multi-tenant burst with the same shutdown and
//! audit gates (the CI step). `--ycsb a|b|c` adds that preset's mix.
//! Timing uses the host monotonic clock via `rhik_server::clock` — this
//! is wall-clock networking, not device simulation.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::thread;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rhik_audit::DeviceAuditor;
use rhik_bench::emit_json;
use rhik_kvssd::{DeviceConfig, ShardedKvssd};
use rhik_server::clock::now_ns;
use rhik_server::{resp, ServerConfig, ServerHandle, TenantSpec};
use rhik_workloads::{zipf_record_key, KeyStream, Keygen, YcsbPreset, ZipfSampler};
use serde_json::{json, Value};

const VALUE_BYTES: usize = 120;
const POPULATION: u64 = 8_000;
const THETA: f64 = 0.99;
const PIPELINE_WINDOW: usize = 32;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Naive,
    Pipelined,
}

impl Mode {
    fn window(self) -> usize {
        match self {
            Mode::Naive => 1,
            Mode::Pipelined => PIPELINE_WINDOW,
        }
    }
    fn name(self) -> &'static str {
        match self {
            Mode::Naive => "naive",
            Mode::Pipelined => "pipelined",
        }
    }
}

/// One benchmark connection: blocking socket + a reply skipper that
/// understands just enough RESP to count frames and errors.
struct LoadConn {
    stream: TcpStream,
    buf: Vec<u8>,
    pos: usize,
}

impl LoadConn {
    fn connect(addr: std::net::SocketAddr) -> LoadConn {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        LoadConn { stream, buf: Vec::with_capacity(16 * 1024), pos: 0 }
    }

    fn auth(&mut self, tenant: &str) {
        let mut wire = Vec::new();
        resp::enc_command(&mut wire, &[b"AUTH", tenant.as_bytes()]);
        self.stream.write_all(&wire).expect("auth send");
        let mut errors = 0;
        self.skip_replies(1, &mut errors);
        assert_eq!(errors, 0, "AUTH {tenant} rejected");
    }

    fn fill(&mut self) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        }
        let mut chunk = [0u8; 16 * 1024];
        let n = self.stream.read(&mut chunk).expect("read");
        assert!(n > 0, "server closed connection mid-run");
        self.buf.extend_from_slice(&chunk[..n]);
    }

    fn line_end(&mut self) -> usize {
        loop {
            if let Some(i) = self.buf[self.pos..].windows(2).position(|w| w == b"\r\n") {
                return self.pos + i + 2;
            }
            self.fill();
        }
    }

    /// Consume exactly `n` replies, counting `-ERR` frames.
    fn skip_replies(&mut self, n: usize, errors: &mut u64) {
        for _ in 0..n {
            while self.pos >= self.buf.len() {
                self.fill();
            }
            let tag = self.buf[self.pos];
            let end = self.line_end();
            if tag == b'-' {
                *errors += 1;
            }
            if tag == b'$' {
                let len: i64 = std::str::from_utf8(&self.buf[self.pos + 1..end - 2])
                    .expect("utf8 length")
                    .parse()
                    .expect("bulk length");
                self.pos = end;
                if len >= 0 {
                    let need = len as usize + 2;
                    while self.buf.len() - self.pos < need {
                        self.fill();
                    }
                    self.pos += need;
                }
            } else {
                self.pos = end;
            }
        }
    }
}

/// How a phase generates keys: the bench's own fixed-size keyspace, or
/// a YCSB preset's scattered record space.
#[derive(Clone, Copy)]
enum KeySpace {
    Bench,
    Ycsb { records: u64 },
}

#[derive(Clone, Copy)]
struct PhaseSpec {
    mode: Mode,
    conns: usize,
    duration_ns: u64,
    read_fraction: f64,
    keyspace: KeySpace,
    tenant: Option<&'static str>,
}

struct PhaseResult {
    ops: u64,
    errors: u64,
    secs: f64,
    ops_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
}

fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx] as f64 / 1e3
}

/// Run one closed-loop phase: one blocking client thread per connection
/// (a connection is an independent closed loop — its next window is not
/// gated on any other connection's replies). Latency is the completion
/// time of a request window (for naive mode the window is one op, i.e.
/// true per-op RTT; for pipelined mode every op in a window completes
/// within the window RTT, so the window RTT is recorded for each op).
fn run_phase(addr: std::net::SocketAddr, spec: PhaseSpec) -> PhaseResult {
    let started = now_ns();
    let deadline = started + spec.duration_ns;

    let handles: Vec<_> = (0..spec.conns)
        .map(|t| {
            thread::spawn(move || {
                let mut conn = LoadConn::connect(addr);
                if let Some(name) = spec.tenant {
                    conn.auth(name);
                }
                let mut rng = StdRng::seed_from_u64(0x5eed + t as u64);
                let zipf_n = match spec.keyspace {
                    KeySpace::Bench => POPULATION,
                    KeySpace::Ycsb { records } => records,
                };
                let zipf = ZipfSampler::new(zipf_n, THETA);
                let keygen = Keygen::new(KeyStream::Sequential, 16, 0);
                let value = vec![0x42u8; VALUE_BYTES];
                let window = spec.mode.window();
                let mut wire = Vec::with_capacity(window * (VALUE_BYTES + 64));
                let mut lats: Vec<u64> = Vec::new();
                let mut ops = 0u64;
                let mut errors = 0u64;
                while now_ns() < deadline {
                    wire.clear();
                    for _ in 0..window {
                        let rank = zipf.sample(&mut rng);
                        let key = match spec.keyspace {
                            KeySpace::Bench => keygen.key_for(rank),
                            KeySpace::Ycsb { records } => zipf_record_key(rank, records),
                        };
                        if rng.gen::<f64>() < spec.read_fraction {
                            resp::enc_command(&mut wire, &[b"GET", &key]);
                        } else {
                            resp::enc_command(&mut wire, &[b"SET", &key, &value]);
                        }
                    }
                    let t0 = now_ns();
                    conn.stream.write_all(&wire).expect("send window");
                    conn.skip_replies(window, &mut errors);
                    let rtt = now_ns() - t0;
                    for _ in 0..window {
                        lats.push(rtt);
                    }
                    ops += window as u64;
                }
                (ops, errors, lats)
            })
        })
        .collect();

    let mut ops = 0;
    let mut errors = 0;
    let mut lats: Vec<u64> = Vec::new();
    for h in handles {
        let (o, e, mut l) = h.join().expect("client thread");
        ops += o;
        errors += e;
        lats.append(&mut l);
    }
    let secs = (now_ns() - started) as f64 / 1e9;
    lats.sort_unstable();
    PhaseResult {
        ops,
        errors,
        secs,
        ops_per_sec: ops as f64 / secs,
        p50_us: percentile(&lats, 0.50),
        p99_us: percentile(&lats, 0.99),
    }
}

fn phase_json(r: &PhaseResult) -> Value {
    json!({
        "ops": r.ops,
        "errors": r.errors,
        "secs": r.secs,
        "ops_per_sec": r.ops_per_sec,
        "p50_us": r.p50_us,
        "p99_us": r.p99_us,
    })
}

fn build_server(tenants: Vec<TenantSpec>) -> ServerHandle<rhik_core::RhikIndex> {
    let device =
        ShardedKvssd::rhik(DeviceConfig::small().with_shards(4).with_hot_cache(512 * 1024));
    // Preload both keyspaces so read phases always hit.
    let keygen = Keygen::new(KeyStream::Sequential, 16, 0);
    let value = vec![0x42u8; VALUE_BYTES];
    for id in 0..POPULATION {
        device.put(&keygen.key_for(id), &value).expect("preload");
    }
    for rank in 0..YCSB_RECORDS {
        device.put(&zipf_record_key(rank, YCSB_RECORDS), &value).expect("ycsb preload");
    }
    device.flush().expect("flush");
    // Thread-per-core: size the worker pool to the host, not a constant
    // (this container exposes a single core — two spinning poll workers
    // would just steal cycles from each other and the clients).
    let workers = thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let cfg = ServerConfig { workers, tenants, ..ServerConfig::default() };
    rhik_server::start(device, cfg).expect("server start")
}

const YCSB_RECORDS: u64 = 4_000;
const QUOTA_OPS_PER_SEC: u64 = 2_000;

fn shutdown_and_audit(server: ServerHandle<rhik_core::RhikIndex>) -> bool {
    let device = server.device().clone();
    server.shutdown();
    device.flush().expect("post-run flush");
    let mut auditor = DeviceAuditor::new();
    let report = device.audit(&mut auditor);
    if !report.is_ok() {
        eprintln!("[gate] device audit failed after shutdown: {report:?}");
    }
    report.is_ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut ycsb: Vec<YcsbPreset> = Vec::new();
    let mut secs_per_phase = 2.0f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--secs-per-phase" => {
                i += 1;
                secs_per_phase = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(2.0);
            }
            "--ycsb" => {
                i += 1;
                let flag = args.get(i).cloned().unwrap_or_default();
                match YcsbPreset::from_flag(&flag).filter(|p| p.read_fraction().is_some()) {
                    Some(p) => ycsb.push(p),
                    None => {
                        eprintln!("--ycsb takes a|b|c (stateless core mixes), got '{flag}'");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("unknown flag {other} (flags: --smoke --ycsb a|b|c --secs-per-phase S)");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if smoke {
        run_smoke();
        return;
    }

    let dur = (secs_per_phase * 1e9) as u64;
    let tenants = vec![
        TenantSpec {
            name: "capped".into(),
            ops_per_sec: QUOTA_OPS_PER_SEC,
            bytes_per_sec: 0,
            weight: 1,
        },
        TenantSpec { name: "heavy".into(), ops_per_sec: 0, bytes_per_sec: 0, weight: 1 },
    ];
    let server = build_server(tenants);
    let addr = server.addr();
    eprintln!("[server_load] serving on {addr}");

    // Phase 1: pipelined vs naive, 8 and 64 connections, 90/10 GET/SET.
    let mut comparison = Vec::new();
    let mut by_mode_64 = (0.0f64, 0.0f64);
    for mode in [Mode::Naive, Mode::Pipelined] {
        for conns in [8usize, 64] {
            let r = run_phase(
                addr,
                PhaseSpec {
                    mode,
                    conns,
                    duration_ns: dur,
                    read_fraction: 0.9,
                    keyspace: KeySpace::Bench,
                    tenant: None,
                },
            );
            eprintln!(
                "[server_load] {} conns={conns}: {:.0} ops/s p50={:.0}us p99={:.0}us ({} errors)",
                mode.name(),
                r.ops_per_sec,
                r.p50_us,
                r.p99_us,
                r.errors
            );
            if conns == 64 {
                match mode {
                    Mode::Naive => by_mode_64.0 = r.ops_per_sec,
                    Mode::Pipelined => by_mode_64.1 = r.ops_per_sec,
                }
            }
            comparison.push(json!({
                "mode": mode.name(),
                "conns": conns,
                "window": mode.window(),
                "result": phase_json(&r),
            }));
        }
    }
    let pipeline_speedup_64 = by_mode_64.1 / by_mode_64.0.max(1e-9);

    // Phase 2: admission control. Solo baseline for the unlimited
    // tenant, then the same load with a capped tenant offered its full
    // closed-loop capacity (≫10x quota) alongside.
    let heavy_spec = PhaseSpec {
        mode: Mode::Pipelined,
        conns: 8,
        duration_ns: dur,
        read_fraction: 0.9,
        keyspace: KeySpace::Bench,
        tenant: Some("heavy"),
    };
    let heavy_solo = run_phase(addr, heavy_spec);
    eprintln!(
        "[server_load] heavy solo: {:.0} ops/s p99={:.0}us",
        heavy_solo.ops_per_sec, heavy_solo.p99_us
    );

    let mixed_dur = (secs_per_phase.max(2.5) * 1e9) as u64;
    let capped_spec = PhaseSpec {
        mode: Mode::Pipelined,
        conns: 4,
        duration_ns: mixed_dur,
        read_fraction: 0.9,
        keyspace: KeySpace::Bench,
        tenant: Some("capped"),
    };
    let heavy_mixed_spec = PhaseSpec { duration_ns: mixed_dur, ..heavy_spec };
    let capped_thread = thread::spawn(move || run_phase(addr, capped_spec));
    let heavy_mixed = run_phase(addr, heavy_mixed_spec);
    let capped = capped_thread.join().expect("capped client");
    eprintln!(
        "[server_load] mixed: capped {:.0} ops/s (quota {QUOTA_OPS_PER_SEC}), heavy p99={:.0}us",
        capped.ops_per_sec, heavy_mixed.p99_us
    );

    // The bucket grants a burst of quota/5 on top of the sustained rate;
    // subtract it from the measured window before gating against ±10%.
    let burst = (QUOTA_OPS_PER_SEC as f64 / 5.0).max(64.0);
    let capped_sustained = (capped.ops as f64 - burst) / capped.secs;
    let quota_error =
        (capped_sustained - QUOTA_OPS_PER_SEC as f64).abs() / QUOTA_OPS_PER_SEC as f64;
    let p99_ratio = heavy_mixed.p99_us / heavy_solo.p99_us.max(1e-9);
    let offered_multiple = heavy_solo.ops_per_sec / QUOTA_OPS_PER_SEC as f64;

    // Phase 3: optional YCSB core mixes over the wire.
    let mut ycsb_results = Vec::new();
    for preset in &ycsb {
        let read_fraction = preset.read_fraction().unwrap_or(1.0);
        let r = run_phase(
            addr,
            PhaseSpec {
                mode: Mode::Pipelined,
                conns: 8,
                duration_ns: dur,
                read_fraction,
                keyspace: KeySpace::Ycsb { records: YCSB_RECORDS },
                tenant: None,
            },
        );
        eprintln!(
            "[server_load] ycsb-{}: {:.0} ops/s p99={:.0}us",
            preset.short_name(),
            r.ops_per_sec,
            r.p99_us
        );
        ycsb_results.push(json!({
            "preset": preset.short_name(),
            "read_fraction": read_fraction,
            "records": YCSB_RECORDS,
            "result": phase_json(&r),
        }));
    }

    let ops_served = server.ops_served();
    let audit_ok = shutdown_and_audit(server);

    let gates = json!({
        "pipelined_2x_naive_at_64_conns": pipeline_speedup_64 >= 2.0,
        "capped_within_10pct_of_quota": quota_error <= 0.10,
        "heavy_p99_within_2x_solo": p99_ratio <= 2.0,
        "offered_at_least_10x_quota": offered_multiple >= 10.0,
        "audit_clean": audit_ok,
    });
    let blob = json!({
        "experiment": "server_load",
        "config": {
            "population": POPULATION,
            "theta": THETA,
            "value_bytes": VALUE_BYTES as u64,
            "pipeline_window": PIPELINE_WINDOW as u64,
            "secs_per_phase": secs_per_phase,
            "quota_ops_per_sec": QUOTA_OPS_PER_SEC,
            "latency_note": "latency = window completion RTT recorded per op; \
                             naive window is a single op (true per-op RTT)",
        },
        "pipelined_vs_naive": comparison,
        "pipeline_speedup_at_64_conns": pipeline_speedup_64,
        "admission": {
            "heavy_solo": phase_json(&heavy_solo),
            "heavy_mixed": phase_json(&heavy_mixed),
            "capped_mixed": phase_json(&capped),
            "capped_sustained_ops_per_sec": capped_sustained,
            "quota_error_fraction": quota_error,
            "heavy_p99_ratio_mixed_vs_solo": p99_ratio,
            "offered_multiple_of_quota": offered_multiple,
        },
        "ycsb": ycsb_results,
        "ops_served": ops_served,
        "gates": gates,
    });
    emit_json("server_load", &blob);
    if let Ok(s) = serde_json::to_string_pretty(&blob) {
        let path = "BENCH_server.json";
        if std::fs::write(path, s).is_ok() {
            eprintln!("[wrote {path}]");
        }
    }

    let mut failed = false;
    if pipeline_speedup_64 < 2.0 {
        eprintln!("[gate] pipelined speedup at 64 conns is {pipeline_speedup_64:.2}x (< 2.0x)");
        failed = true;
    }
    if quota_error > 0.10 {
        eprintln!("[gate] capped tenant off quota by {:.1}% (> 10%)", quota_error * 100.0);
        failed = true;
    }
    if p99_ratio > 2.0 {
        eprintln!("[gate] heavy tenant mixed p99 is {p99_ratio:.2}x solo (> 2x)");
        failed = true;
    }
    if offered_multiple < 10.0 {
        eprintln!("[gate] offered load only {offered_multiple:.1}x quota (< 10x)");
        failed = true;
    }
    if !audit_ok {
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    eprintln!("[server_load] all gates passed");
}

/// CI smoke: short multi-tenant burst, nonzero throughput, clean
/// shutdown, audit pass. Runs in a couple of seconds.
fn run_smoke() {
    let tenants = vec![
        TenantSpec { name: "capped".into(), ops_per_sec: 500, bytes_per_sec: 0, weight: 1 },
        TenantSpec { name: "heavy".into(), ops_per_sec: 0, bytes_per_sec: 0, weight: 2 },
    ];
    let server = build_server(tenants);
    let addr = server.addr();
    let dur = 500_000_000u64; // 0.5 s burst

    let specs = [
        PhaseSpec {
            mode: Mode::Pipelined,
            conns: 4,
            duration_ns: dur,
            read_fraction: 0.8,
            keyspace: KeySpace::Bench,
            tenant: Some("heavy"),
        },
        PhaseSpec {
            mode: Mode::Pipelined,
            conns: 4,
            duration_ns: dur,
            read_fraction: 0.8,
            keyspace: KeySpace::Bench,
            tenant: Some("capped"),
        },
    ];
    let threads: Vec<_> =
        specs.into_iter().map(|spec| thread::spawn(move || run_phase(addr, spec))).collect();
    let results: Vec<PhaseResult> = threads.into_iter().map(|t| t.join().expect("load")).collect();

    let total_ops: u64 = results.iter().map(|r| r.ops).sum();
    let total_errors: u64 = results.iter().map(|r| r.errors).sum();
    let served = server.ops_served();
    let capped_tenant = server.tenants().resolve("capped").expect("tenant");
    let throttled = capped_tenant.stats.throttled.get();
    let audit_ok = shutdown_and_audit(server);

    eprintln!(
        "[smoke] {total_ops} ops ({total_errors} errors), server counted {served}, \
         capped throttled {throttled} times, audit_ok={audit_ok}"
    );
    let ok = total_ops > 0 && total_errors == 0 && served > 0 && throttled > 0 && audit_ok;
    if !ok {
        eprintln!("[smoke] FAILED");
        std::process::exit(1);
    }
    eprintln!("[smoke] PASSED");
}
