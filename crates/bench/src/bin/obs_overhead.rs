//! Telemetry overhead: enabled-vs-disabled hot-path throughput delta.
//!
//! Three phases over identical put/get workloads on fresh devices:
//!
//! * **baseline** — no sink ever installed (the default device);
//! * **disabled** — an explicitly installed disabled sink (the "one
//!   branch per command" configuration every production device runs);
//! * **enabled** — a live sink collecting counters, histograms, spans,
//!   and per-shard gauges on every command.
//!
//! Each phase runs three trials and keeps the best wall-clock time (the
//! least-noisy estimate on a shared CI host). Acceptance gates:
//!
//! * disabled-sink penalty vs baseline ≤ 2 % (warning only — both sides
//!   are the same single branch, so anything above is host noise);
//! * enabled-sink penalty vs baseline ≤ 10 % (**exit 1** when exceeded —
//!   this is the CI smoke gate).
//!
//! A final untimed instrumented run dumps per-stage latency attribution
//! and the traced flash-reads-per-lookup distribution into the JSON blob
//! (`BENCH_obs_overhead.json` + `target/experiments/obs_overhead.json`).

use std::time::Instant;

use rhik_bench::{
    attribution_json, attribution_table, emit_json, reads_per_lookup_json, render_table, Scale,
};
use rhik_kvssd::{DeviceConfig, KvssdDevice, TelemetrySink};
use rhik_nand::DeviceProfile;
use serde_json::json;

const VALUE_BYTES: usize = 512;
const TRIALS: usize = 3;

fn config(scale: Scale) -> DeviceConfig {
    let mut cfg = DeviceConfig::small().with_profile(DeviceProfile::kvemu_like());
    cfg.geometry.blocks = scale.pick(256, 1024);
    cfg
}

/// One trial: fill `keys` pairs, then `ops` mixed commands (50 % get /
/// 50 % update). Returns host wall-clock seconds for the whole stream.
fn trial(scale: Scale, sink: Option<TelemetrySink>, keys: u64, ops: u64) -> f64 {
    let mut dev = KvssdDevice::rhik(config(scale));
    if let Some(s) = sink {
        dev.set_telemetry(s);
    }
    let value = vec![0xEE; VALUE_BYTES];
    let start = Instant::now();
    for i in 0..keys {
        dev.put(format!("obs-{i:010}").as_bytes(), &value).expect("put");
    }
    for i in 0..ops {
        let key = format!("obs-{:010}", (i * 7919) % keys);
        if i % 2 == 0 {
            let _ = dev.get(key.as_bytes()).expect("get");
        } else {
            dev.put(key.as_bytes(), &value).expect("update");
        }
    }
    start.elapsed().as_secs_f64()
}

/// Best-of-N wall-clock seconds for a phase; the sink is rebuilt per
/// trial so each runs on a fresh device and fresh telemetry state.
fn best_of(scale: Scale, keys: u64, ops: u64, mk_sink: impl Fn() -> Option<TelemetrySink>) -> f64 {
    (0..TRIALS).map(|_| trial(scale, mk_sink(), keys, ops)).fold(f64::INFINITY, f64::min)
}

fn main() {
    let scale = Scale::from_args();
    let keys: u64 = scale.pick(3_000, 20_000);
    let ops: u64 = scale.pick(12_000, 80_000);
    let total_ops = keys + ops;

    eprintln!("[obs_overhead] {keys} keys + {ops} mixed ops, best of {TRIALS} trials per phase");
    let baseline = best_of(scale, keys, ops, || None);
    let disabled = best_of(scale, keys, ops, || Some(TelemetrySink::disabled()));
    let enabled = best_of(scale, keys, ops, || Some(TelemetrySink::enabled()));

    // Penalty vs baseline, in percent; clamp at 0 so measurement noise in
    // the fast direction never reads as negative overhead.
    let penalty = |secs: f64| ((secs - baseline) / baseline * 100.0).max(0.0);
    let disabled_pct = penalty(disabled);
    let enabled_pct = penalty(enabled);

    let mut rows = vec![vec![
        "phase".to_string(),
        "best secs".to_string(),
        "Mops/s".to_string(),
        "penalty %".to_string(),
    ]];
    for (name, secs, pct) in [
        ("baseline", baseline, 0.0),
        ("disabled", disabled, disabled_pct),
        ("enabled", enabled, enabled_pct),
    ] {
        rows.push(vec![
            name.to_string(),
            format!("{secs:.3}"),
            format!("{:.3}", total_ops as f64 / secs / 1e6),
            format!("{pct:.2}"),
        ]);
    }
    println!("{}", render_table(&rows));

    // Untimed instrumented run for the attribution dump: an unbounded-ish
    // trace ring so the whole run (resizes included) is attributable.
    let sink = TelemetrySink::with_trace_capacity((total_ops as usize).max(1));
    let _ = trial(scale, Some(sink.clone()), keys, ops);
    let attr = sink.attribution();
    let rpl = sink.reads_per_lookup().unwrap_or_default();
    println!("per-stage device-time attribution (instrumented run):");
    println!("{}", attribution_table(&attr));
    println!(
        "traced reads-per-lookup: {} lookups, max {} ({}), {:.2}% within 1 read",
        rpl.lookups,
        rpl.max,
        if rpl.invariant_ok() { "invariant holds" } else { "INVARIANT VIOLATED" },
        rpl.pct_within(1),
    );

    let blob = json!({
        "experiment": "obs_overhead",
        "scale": scale.pick("small", "full"),
        "metric_note": "wall-clock best-of-3 per phase on fresh devices; \
                        penalty is vs the never-installed-sink baseline, clamped at 0",
        "keys": keys,
        "mixed_ops": ops,
        "value_bytes": VALUE_BYTES as u64,
        "trials": TRIALS as u64,
        "baseline_secs": baseline,
        "disabled_secs": disabled,
        "enabled_secs": enabled,
        "disabled_penalty_pct": disabled_pct,
        "enabled_penalty_pct": enabled_pct,
        "disabled_budget_pct": 2.0,
        "enabled_budget_pct": 10.0,
        "attribution": attribution_json(&attr),
        "reads_per_lookup": reads_per_lookup_json(&rpl),
    });
    emit_json("obs_overhead", &blob);
    if let Ok(s) = serde_json::to_string_pretty(&blob) {
        let path = "BENCH_obs_overhead.json";
        if std::fs::write(path, s).is_ok() {
            eprintln!("[wrote {path}]");
        }
    }

    if disabled_pct > 2.0 {
        eprintln!(
            "warning: disabled-sink penalty {disabled_pct:.2}% exceeds the 2% budget \
             (both sides are one branch; treat as host noise unless reproducible)"
        );
    }
    if enabled_pct > 10.0 {
        eprintln!("FAIL: enabled-telemetry penalty {enabled_pct:.2}% exceeds the 10% budget");
        std::process::exit(1);
    }
    eprintln!(
        "ok: enabled-telemetry penalty {enabled_pct:.2}% within the 10% budget \
         (disabled {disabled_pct:.2}%)"
    );
}
