//! Fig. 5 — RHIK vs the 8-level multi-level hash index on the IBM Cloud
//! Object Store cluster workloads, under a fixed FTL cache budget.
//!
//! (a) FTL cache miss ratio per cluster.
//! (b) Percentile of metadata accesses served with at most one flash read.
//!
//! The paper caps the cache at 10 MB for a 10 GB device; we scale the
//! budget and cluster index footprints together so each cluster lands in
//! the same regime (index ≪ / ≈ / ≫ cache). See DESIGN.md "Substitutions"
//! for the synthetic-trace rationale.
//!
//! ```sh
//! cargo run -p rhik-bench --release --bin fig5 [--scale full]
//! ```

use rhik_baseline::MultiLevelConfig;
use rhik_bench::{fmt_bytes, render_table, Scale};
use rhik_ftl::{GcConfig, IndexBackend};
use rhik_kvssd::{DeviceConfig, EngineMode, KvssdDevice};
use rhik_nand::{DeviceProfile, NandGeometry};
use rhik_sigs::SigHasher;
use rhik_workloads::driver::WorkloadDriver;
use rhik_workloads::ibm;

fn main() {
    let scale = Scale::from_args();
    let cache_budget: usize = scale.pick(64 << 10, 512 << 10);
    let ops: usize = scale.pick(6_000, 40_000);
    let value_scale: f64 = scale.pick(0.002, 0.01);

    let geometry = NandGeometry {
        blocks: scale.pick(512, 2048),
        pages_per_block: 64,
        page_size: 4096,
        spare_size: 128,
        channels: 4,
    };
    let device_config = DeviceConfig {
        geometry,
        profile: DeviceProfile::instant(), // cache behaviour, not time
        cache_budget_bytes: cache_budget,
        gc: GcConfig { low_watermark: 3, high_watermark: 6, ..Default::default() },
        gc_reserve_blocks: 2,
        shards: 1,
        engine: EngineMode::Sync,
        hasher: SigHasher::default(),
        rhik: rhik_core::RhikConfig::default(),
        hot_cache: rhik_kvssd::CacheConfig::off(),
    };

    println!(
        "=== Fig. 5: cache behaviour on IBM COS clusters (cache {}) ===\n",
        fmt_bytes(cache_budget as u64)
    );
    let mut rows = vec![vec![
        "cluster".to_string(),
        "regime".to_string(),
        "keys".to_string(),
        "idx/cache".to_string(),
        "miss% rhik".to_string(),
        "miss% multilevel".to_string(),
        "<=1 read% rhik".to_string(),
        "<=1 read% multilevel".to_string(),
        "avg reads/lookup ML".to_string(),
    ]];

    let mut results = Vec::new();
    for cluster in ibm::clusters() {
        let (load, population) = cluster.synthesize(cache_budget as u64, 17, 0, value_scale, 42);
        let (run, _) = cluster.synthesize(cache_budget as u64, 17, ops, value_scale, 43);
        let run_tail = &run[population as usize..];

        // --- RHIK
        let mut rhik_dev = KvssdDevice::rhik(device_config);
        WorkloadDriver::replay(&mut rhik_dev, &load).expect("rhik load");
        rhik_dev.ftl_mut().cache().reset_stats();
        let rhik_stats_before = rhik_dev.index().stats().clone();
        WorkloadDriver::replay(&mut rhik_dev, run_tail).expect("rhik run");
        let rs = rhik_dev.index().stats();
        let rhik_miss = lookup_miss_pct(&rhik_stats_before, rs);
        let rhik_one = pct_within(&rhik_stats_before, rs, 1);

        // --- Multi-level
        let mut ml_dev = KvssdDevice::multilevel(
            device_config,
            // Full scale needs a deeper level-0 so the 8-level cap covers
            // the largest cluster's population.
            MultiLevelConfig { initial_bits: scale.pick(1, 4), max_levels: 8, hop_width: 32 },
        );
        WorkloadDriver::replay(&mut ml_dev, &load).expect("ml load");
        ml_dev.ftl_mut().cache().reset_stats();
        let ml_before = ml_dev.index().stats().clone();
        WorkloadDriver::replay(&mut ml_dev, run_tail).expect("ml run");
        let ms = ml_dev.index().stats();
        let ml_miss = lookup_miss_pct(&ml_before, ms);
        let ml_one = pct_within(&ml_before, ms, 1);
        let ml_lookups = ms.lookups - ml_before.lookups;
        let ml_reads = ms.metadata_flash_reads - ml_before.metadata_flash_reads;
        let ml_avg = ml_reads as f64 / ml_lookups.max(1) as f64;

        rows.push(vec![
            cluster.name.to_string(),
            format!("{:?}", cluster.regime),
            population.to_string(),
            format!("{:.1}", cluster.index_to_cache),
            format!("{rhik_miss:.1}"),
            format!("{ml_miss:.1}"),
            format!("{rhik_one:.1}"),
            format!("{ml_one:.1}"),
            format!("{ml_avg:.2}"),
        ]);
        results.push(serde_json::json!({
            "cluster": cluster.name,
            "population": population,
            "index_to_cache": cluster.index_to_cache,
            "rhik_miss_pct": rhik_miss,
            "ml_miss_pct": ml_miss,
            "rhik_le1_pct": rhik_one,
            "ml_le1_pct": ml_one,
            "ml_avg_reads": ml_avg,
        }));
    }
    print!("{}", render_table(&rows));
    println!("\n(a) small-index clusters (022-072) stay near 0% misses for both;");
    println!("    large-index clusters (083, 096) thrash the multi-level cache harder.");
    println!("(b) RHIK answers 100% of lookups within one flash read in every cluster;");
    println!("    the multi-level index needs several reads once it spills levels.");
    rhik_bench::emit_json("fig5", &serde_json::json!({ "clusters": results }));
}

/// Δ percentile of lookups needing at most `max_reads` flash reads
/// between two index-stats snapshots.
fn pct_within(
    before: &rhik_ftl::IndexStats,
    after: &rhik_ftl::IndexStats,
    max_reads: usize,
) -> f64 {
    let mut within = 0u64;
    let mut total = 0u64;
    for (i, (&a, &b)) in
        after.reads_per_lookup_histo.iter().zip(before.reads_per_lookup_histo.iter()).enumerate()
    {
        let d = a - b;
        total += d;
        if i <= max_reads {
            within += d;
        }
    }
    if total == 0 {
        100.0
    } else {
        100.0 * within as f64 / total as f64
    }
}

/// Δ fraction of lookups that needed any flash read at all — the
/// per-metadata-access cache miss ratio of Fig. 5a.
fn lookup_miss_pct(before: &rhik_ftl::IndexStats, after: &rhik_ftl::IndexStats) -> f64 {
    100.0 - pct_within(before, after, 0)
}
