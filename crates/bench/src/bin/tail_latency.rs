//! Extension experiment — resize stalls and tail latency (§VI "Real-time
//! index scaling": "current implementation of RHIK keeps I/O requests in
//! the submission queue on halt while re-configuring the index. This
//! increases the tail latency of I/O requests during that period.")
//!
//! Two identical fill workloads:
//!   * **conservative init** — the index starts at one table and doubles
//!     its way up, stalling the queue at every resize;
//!   * **pre-sized init** — Eq. 2 sizing for the anticipated key count, so
//!     no resize ever fires.
//!
//! The put-latency percentiles show exactly where the §VI concern lives:
//! the mean barely moves, the p99.9 blows up with conservative init.
//!
//! ```sh
//! cargo run -p rhik-bench --release --bin tail_latency [--scale full]
//! ```

use rhik_bench::{render_table, Scale};
use rhik_core::RhikConfig;
use rhik_ftl::IndexBackend;
use rhik_kvssd::{DeviceConfig, KvssdDevice};
use rhik_nand::DeviceProfile;

fn main() {
    let scale = Scale::from_args();
    let keys: u64 = scale.pick(30_000, 200_000);

    let mut rows = vec![vec![
        "init".to_string(),
        "resizes".to_string(),
        "put mean µs".to_string(),
        "put p50 µs".to_string(),
        "put p99 µs".to_string(),
        "put p99.9 µs".to_string(),
        "put max ms".to_string(),
    ]];

    let mut emitted = Vec::new();
    for (label, rhik_cfg) in [
        // stop_the_world: this bench demonstrates the §VI reconfiguration
        // stall that incremental migration (see resize_tail) amortizes away.
        (
            "conservative (1 table)",
            RhikConfig { initial_dir_bits: 0, stop_the_world: true, ..Default::default() },
        ),
        (
            "pre-sized (Eq. 2)",
            RhikConfig { stop_the_world: true, ..RhikConfig::default() }
                .with_anticipated_keys(keys * 2, 4096),
        ),
    ] {
        let mut cfg = DeviceConfig::small().with_profile(DeviceProfile::kvemu_like());
        cfg.geometry.blocks = scale.pick(256, 2048); // room for the whole fill
        cfg.rhik = rhik_cfg;
        let mut dev = KvssdDevice::rhik(cfg);
        for i in 0..keys {
            dev.put(format!("tail-{i:010}").as_bytes(), &[0u8; 64]).expect("put");
        }
        let h = dev.put_latencies();
        rows.push(vec![
            label.to_string(),
            dev.index().stats().resizes.len().to_string(),
            format!("{:.1}", h.mean_ns() / 1e3),
            format!("{:.1}", h.percentile_ns(50.0) as f64 / 1e3),
            format!("{:.1}", h.percentile_ns(99.0) as f64 / 1e3),
            format!("{:.1}", h.percentile_ns(99.9) as f64 / 1e3),
            format!("{:.2}", h.max_ns() as f64 / 1e6),
        ]);
        emitted.push(serde_json::json!({
            "init": label,
            "resizes": dev.index().stats().resizes.len(),
            "mean_ns": h.mean_ns(),
            "p50_ns": h.percentile_ns(50.0),
            "p99_ns": h.percentile_ns(99.0),
            "p999_ns": h.percentile_ns(99.9),
            "max_ns": h.max_ns(),
        }));
    }

    println!("=== resize stalls vs put tail latency ({keys} sequential puts) ===\n");
    print!("{}", render_table(&rows));
    println!("\nconservative initialization trades a handful of multi-millisecond");
    println!("stalls (visible at p99.9/max) for not over-provisioning the index —");
    println!("the trade §VI's \"real-time index scaling\" future work wants to fix.");
    rhik_bench::emit_json("tail_latency", &serde_json::json!({ "keys": keys, "rows": emitted }));
}
