//! Extension experiment — §VI "Integrate advantages of hash-based and
//! log-structured merge based indexing": the paper asks whether RHIK's
//! fast point queries can coexist with LSM's lower metadata write
//! amplification. This harness quantifies the trade on the same device:
//!
//! * **metadata write amplification** — index pages programmed per KV
//!   update (RHIK rewrites a whole table page per dirty eviction; LSM
//!   batches many updates per run page, then pays compaction),
//! * **lookup cost** — flash reads per point query (RHIK ≤ 1; LSM pays
//!   one read per probed run).
//!
//! ```sh
//! cargo run -p rhik-bench --release --bin lsm_vs_hash [--scale full]
//! ```

use rhik_baseline::LsmConfig;
use rhik_bench::{render_table, Scale};
use rhik_ftl::IndexBackend;
use rhik_kvssd::{DeviceConfig, KvssdDevice};
use rhik_workloads::{KeyStream, Keygen, WorkloadDriver};

struct Row {
    system: &'static str,
    keys: u64,
    update_rounds: u64,
    index_programs: u64,
    index_reads_per_lookup: f64,
    le1_pct: f64,
}

fn measure<I: IndexBackend>(
    system: &'static str,
    mut dev: KvssdDevice<I>,
    keys: u64,
    rounds: u64,
) -> Row {
    // Load.
    let mut gen = Keygen::new(KeyStream::Sequential, 16, 5);
    WorkloadDriver::fill(&mut dev, &mut gen, keys, 128).expect("load");
    // Update churn.
    for _ in 0..rounds {
        let mut gen = Keygen::new(KeyStream::Sequential, 16, 5);
        WorkloadDriver::fill(&mut dev, &mut gen, keys, 128).expect("update");
    }
    let programs = dev.ftl().stats().index_page_programs;

    // Measured read phase.
    let reads_before = dev.index().stats().metadata_flash_reads;
    let lookups_before = dev.index().stats().lookups;
    let histo_before = dev.index().stats().reads_per_lookup_histo;
    let mut gen = Keygen::new(KeyStream::Sequential, 16, 5);
    WorkloadDriver::read(&mut dev, &mut gen, keys).expect("read");
    let s = dev.index().stats();
    let lookups = s.lookups - lookups_before;
    let reads = s.metadata_flash_reads - reads_before;
    let mut within = 0u64;
    let mut total = 0u64;
    for (i, (&a, &b)) in s.reads_per_lookup_histo.iter().zip(histo_before.iter()).enumerate() {
        total += a - b;
        if i <= 1 {
            within += a - b;
        }
    }

    Row {
        system,
        keys,
        update_rounds: rounds,
        index_programs: programs,
        index_reads_per_lookup: reads as f64 / lookups.max(1) as f64,
        le1_pct: if total == 0 { 100.0 } else { 100.0 * within as f64 / total as f64 },
    }
}

fn main() {
    let scale = Scale::from_args();
    let keys: u64 = scale.pick(8_000, 50_000);
    let rounds: u64 = scale.pick(3, 6);

    let mut cfg = DeviceConfig::small();
    cfg.geometry.blocks = scale.pick(256, 1024);
    cfg.cache_budget_bytes = 32 << 10; // tight: metadata traffic is visible

    let rows_data = [
        measure("rhik", KvssdDevice::rhik(cfg), keys, rounds),
        measure("lsm (PinK-style)", KvssdDevice::lsm(cfg, LsmConfig::default()), keys, rounds),
    ];

    let mut rows = vec![vec![
        "index".to_string(),
        "keys".to_string(),
        "update rounds".to_string(),
        "index pages programmed".to_string(),
        "pages/update".to_string(),
        "reads per lookup".to_string(),
        "<=1 read %".to_string(),
    ]];
    for r in &rows_data {
        let updates = r.keys * (r.update_rounds + 1);
        rows.push(vec![
            r.system.to_string(),
            r.keys.to_string(),
            r.update_rounds.to_string(),
            r.index_programs.to_string(),
            format!("{:.4}", r.index_programs as f64 / updates as f64),
            format!("{:.3}", r.index_reads_per_lookup),
            format!("{:.1}", r.le1_pct),
        ]);
    }

    println!("=== §VI: hash-based vs LSM-based index, same device ===\n");
    print!("{}", render_table(&rows));
    println!("\nLSM batches hundreds of index updates per run page (low metadata write");
    println!("amplification) but point lookups probe multiple runs; RHIK pays a table");
    println!("rewrite per dirty eviction but never more than one read per lookup —");
    println!("exactly the coexistence question the paper's discussion poses.");

    rhik_bench::emit_json(
        "lsm_vs_hash",
        &serde_json::json!({
            "rows": rows_data.iter().map(|r| serde_json::json!({
                "system": r.system,
                "keys": r.keys,
                "index_programs": r.index_programs,
                "reads_per_lookup": r.index_reads_per_lookup,
                "le1_pct": r.le1_pct,
            })).collect::<Vec<_>>(),
        }),
    );
}
