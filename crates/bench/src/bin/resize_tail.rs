//! Resize tail latency: incremental migration vs stop-the-world doubling.
//!
//! Grows two identical RHIK devices from a single-table directory through
//! several doublings with the same sequential put stream — one with the
//! default incremental migration (`resize_migration_batch` slots piggyback
//! on each command), one with `stop_the_world: true` (the paper's §IV-A2
//! monolithic pass, as measured in Fig. 7). Per-put device-time latency is
//! sampled from the simulated clock, and fixed-width windows around every
//! doubling are pooled per mode so the percentiles describe exactly the
//! ops that a reconfiguration can stall.
//!
//! Headline: pooled-window p99.9 improvement (stop-the-world / incremental)
//! at equal throughput (same key stream, same device geometry). The two
//! modes must also do the same migration work: summed resize flash
//! reads+programs within 10 % of each other (amortization moves the work,
//! it must not multiply it).
//!
//! Emits `BENCH_resize_tail.json` plus `target/experiments/resize_tail.json`.

use rhik_bench::{
    attribution_json, attribution_table, audit_requested, emit_json, reads_per_lookup_json,
    render_table, trace_dump_requested, BenchAuditor, Scale,
};
use rhik_core::RhikConfig;
use rhik_ftl::IndexBackend;
use rhik_kvssd::{DeviceConfig, KvssdDevice, TelemetrySink};
use rhik_nand::DeviceProfile;
use serde_json::{json, Value};

/// Window width (ops) pooled around each doubling. Wide enough to hold a
/// whole early migration, narrow enough that one stop-the-world stall is
/// above the 0.1 % rank (1/400 = 0.25 %), so p99.9 sees it.
const WINDOW: usize = 400;

struct ModeRun {
    label: &'static str,
    latencies_ns: Vec<u64>,
    /// Op index at which each doubling began (first op that observed the
    /// migration in flight, or the op that absorbed the monolithic pass).
    begins: Vec<usize>,
    /// Op index at which each doubling completed.
    ends: Vec<usize>,
    resize_flash_reads: u64,
    resize_flash_programs: u64,
    max_step_media_ns: u64,
    device_secs: f64,
}

fn run_mode(
    label: &'static str,
    stop_the_world: bool,
    scale: Scale,
    keys: u64,
    sink: Option<TelemetrySink>,
) -> ModeRun {
    let mut cfg = DeviceConfig::small().with_profile(DeviceProfile::kvemu_like());
    // Room for the whole fill.
    cfg.geometry.blocks = scale.pick(256, 2048);
    // One slot per command: a directory slot is a full-page record table,
    // so batch=1 is the finest (and for 4 KiB pages the natural) migration
    // granularity — the per-op stall is one table split, independent of
    // directory size. stop_the_world ignores the batch.
    cfg.rhik = RhikConfig {
        initial_dir_bits: 0,
        resize_migration_batch: 1,
        stop_the_world,
        ..Default::default()
    };
    let mut dev = KvssdDevice::rhik(cfg);
    if let Some(s) = sink {
        dev.set_telemetry(s);
    }

    // `--audit`: prove cross-layer consistency of this exact run every
    // 500 ops (and at the end). Latencies are simulated device time, so
    // the host-side audit cost never shows in the measurements.
    let mut audit = BenchAuditor::new(audit_requested(), 500);

    let mut latencies_ns = Vec::with_capacity(keys as usize);
    let mut begins = Vec::new();
    let mut ends = Vec::new();
    let mut completed = 0usize;
    let mut in_flight = false;
    for i in 0..keys {
        let t0 = dev.engine().now_ns();
        dev.put(format!("rt-{i:010}").as_bytes(), &[0u8; 64]).expect("put");
        latencies_ns.push(dev.engine().now_ns() - t0);
        audit.tick(&dev, i + 1 == keys);

        let now_done = dev.index().stats().resizes.len();
        if now_done > completed {
            // A doubling finished inside this op. If we never saw it in
            // flight (stop-the-world), it also began here.
            if !in_flight {
                begins.push(i as usize);
            }
            ends.push(i as usize);
            completed = now_done;
            in_flight = dev.resize_in_progress();
        } else if dev.resize_in_progress() && !in_flight {
            begins.push(i as usize);
            in_flight = true;
        }
    }

    if audit.audits_run > 0 {
        eprintln!("[{label}] --audit: {} clean cross-layer audits", audit.audits_run);
    }
    if std::env::var_os("RHIK_RT_DEBUG").is_some() {
        let mut worst: Vec<(u64, usize)> =
            latencies_ns.iter().enumerate().map(|(i, &l)| (l, i)).collect();
        worst.sort_unstable_by(|a, b| b.cmp(a));
        eprintln!("[{label}] begins {begins:?} ends {ends:?}");
        for &(l, i) in worst.iter().take(8) {
            eprintln!("[{label}] op {i}: {:.3} ms", l as f64 / 1e6);
        }
    }
    let stats = dev.index().stats().clone();
    ModeRun {
        label,
        latencies_ns,
        begins,
        ends,
        resize_flash_reads: stats.resizes.iter().map(|e| e.flash_reads).sum(),
        resize_flash_programs: stats.resizes.iter().map(|e| e.flash_programs).sum(),
        max_step_media_ns: stats.resizes.iter().map(|e| e.max_step_media_ns).max().unwrap_or(0),
        device_secs: dev.elapsed_secs(),
    }
}

/// Exact percentile from a sorted sample set (nearest-rank).
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Pool fixed-width windows of per-op latencies around each doubling.
/// Every window spans the whole migration (begin..=end) plus enough ops
/// after it to reach at least `WINDOW` samples, so the stop-the-world
/// spike and the incremental spread both land fully inside.
fn pooled_windows(run: &ModeRun) -> Vec<u64> {
    let mut pool = Vec::new();
    let n = run.latencies_ns.len();
    let mut covered_to = 0usize; // avoid double-counting overlapping windows
    for (k, &begin) in run.begins.iter().enumerate() {
        let end = run.ends.get(k).copied().unwrap_or(n - 1);
        let stop = (begin + WINDOW).max(end + 1).min(n);
        let start = begin.max(covered_to);
        pool.extend_from_slice(&run.latencies_ns[start..stop]);
        covered_to = stop;
    }
    pool.sort_unstable();
    pool
}

fn main() {
    let scale = Scale::from_args();
    let keys: u64 = scale.pick(6_000, 25_000);

    let runs = [
        run_mode("incremental", false, scale, keys, None),
        run_mode("stop_the_world", true, scale, keys, None),
    ];

    let mut rows = vec![vec![
        "mode".to_string(),
        "doublings".to_string(),
        "window ops".to_string(),
        "p50 µs".to_string(),
        "p99 µs".to_string(),
        "p99.9 µs".to_string(),
        "max µs".to_string(),
        "worst step ms".to_string(),
        "resize flash ops".to_string(),
    ]];
    let mut results: Vec<Value> = Vec::new();
    let mut p999_by_mode = Vec::new();
    for run in &runs {
        let pool = pooled_windows(run);
        let (p50, p99, p999) =
            (percentile(&pool, 50.0), percentile(&pool, 99.0), percentile(&pool, 99.9));
        let max = pool.last().copied().unwrap_or(0);
        p999_by_mode.push(p999);
        rows.push(vec![
            run.label.to_string(),
            run.ends.len().to_string(),
            pool.len().to_string(),
            format!("{:.1}", p50 as f64 / 1e3),
            format!("{:.1}", p99 as f64 / 1e3),
            format!("{:.1}", p999 as f64 / 1e3),
            format!("{:.1}", max as f64 / 1e3),
            format!("{:.3}", run.max_step_media_ns as f64 / 1e6),
            (run.resize_flash_reads + run.resize_flash_programs).to_string(),
        ]);
        results.push(json!({
            "mode": run.label,
            "keys": keys,
            "doublings": run.ends.len(),
            "doubling_begin_ops": run.begins.clone(),
            "doubling_end_ops": run.ends.clone(),
            "window_samples": pool.len(),
            "window_p50_ns": p50,
            "window_p99_ns": p99,
            "window_p999_ns": p999,
            "window_max_ns": max,
            "max_step_media_ns": run.max_step_media_ns,
            "resize_flash_reads": run.resize_flash_reads,
            "resize_flash_programs": run.resize_flash_programs,
            "device_secs": run.device_secs,
        }));
    }

    println!("{}", render_table(&rows));

    let p999_improvement = p999_by_mode[1] as f64 / (p999_by_mode[0].max(1)) as f64;
    let work = |r: &ModeRun| (r.resize_flash_reads + r.resize_flash_programs) as f64;
    let media_ratio = work(&runs[0]) / work(&runs[1]).max(1.0);
    println!(
        "p99.9 during doublings: stop-the-world / incremental = {p999_improvement:.1}x \
         (migration flash-op ratio incremental/monolithic = {media_ratio:.3})"
    );

    let blob = json!({
        "experiment": "resize_tail",
        "scale": scale.pick("small", "full"),
        "metric_note": "latencies are simulated device time; windows pool \
                        ops from each doubling's begin through max(begin+400, end)",
        "window_ops": WINDOW as u64,
        "keys": keys,
        "results": results,
        "headline_p999_improvement": p999_improvement,
        "migration_flash_op_ratio_incremental_over_monolithic": media_ratio,
    });
    emit_json("resize_tail", &blob);
    if let Ok(s) = serde_json::to_string_pretty(&blob) {
        let path = "BENCH_resize_tail.json";
        if std::fs::write(path, s).is_ok() {
            eprintln!("[wrote {path}]");
        }
    }

    // `--trace-dump`: rerun the incremental mode with a live telemetry
    // sink and attribute per-op device time across stages — directory
    // walks, flash reads/programs, cache traffic, GC, migration batches,
    // and queue stalls all become visible, including mid-resize.
    if trace_dump_requested() {
        let sink = TelemetrySink::with_trace_capacity(keys as usize);
        let _ = run_mode("incremental-traced", false, scale, keys, Some(sink.clone()));
        let attr = sink.attribution();
        let rpl = sink.reads_per_lookup().unwrap_or_default();
        println!("per-stage device-time attribution (incremental run, telemetry on):");
        println!("{}", attribution_table(&attr));
        println!(
            "traced reads-per-lookup: {} lookups, max {} ({})",
            rpl.lookups,
            rpl.max,
            if rpl.invariant_ok() { "invariant holds" } else { "INVARIANT VIOLATED" },
        );
        let trace = json!({
            "experiment": "resize_tail_trace",
            "scale": scale.pick("small", "full"),
            "keys": keys,
            "attribution": attribution_json(&attr),
            "reads_per_lookup": reads_per_lookup_json(&rpl),
            "trace_spans_dropped": sink.trace_dropped(),
        });
        emit_json("resize_tail_trace", &trace);
    }
}
