//! Fig. 6 — I/O performance: normalized throughput vs value size for
//! writes/reads in async/sync mode, across three systems:
//!
//! * **KVSSD**  — multi-level index + PM983-like timing profile (the real
//!   device stand-in; see DESIGN.md "Substitutions"),
//! * **KVEMU**  — multi-level index + KVEMU-like timing profile,
//! * **RHIK**   — this paper's index + KVEMU-like timing profile.
//!
//! Each cell runs a fixed-volume sequential workload (the paper uses 1 GB;
//! scaled here), reporting simulated MB/s, normalized to the KVSSD column
//! so "who wins by what factor" is directly visible.
//!
//! ```sh
//! cargo run -p rhik-bench --release --bin fig6 [--scale full]
//! ```

use rhik_baseline::{MultiLevelConfig, MultiLevelIndex};
use rhik_bench::{fmt_bytes, render_table, Scale};
use rhik_core::RhikIndex;
use rhik_ftl::GcConfig;
use rhik_kvssd::{DeviceConfig, EngineMode, KvssdDevice};
use rhik_nand::{DeviceProfile, NandGeometry};
use rhik_sigs::SigHasher;
use rhik_workloads::driver::WorkloadDriver;
use rhik_workloads::keygen::{KeyStream, Keygen};

#[derive(Clone, Copy, PartialEq)]
enum System {
    Kvssd,
    Kvemu,
    Rhik,
}

impl System {
    fn name(self) -> &'static str {
        match self {
            System::Kvssd => "KVSSD",
            System::Kvemu => "KVEMU",
            System::Rhik => "RHIK",
        }
    }

    fn profile(self) -> DeviceProfile {
        match self {
            System::Kvssd => DeviceProfile::pm983_like(),
            System::Kvemu | System::Rhik => DeviceProfile::kvemu_like(),
        }
    }
}

fn device_config(sys: System, engine: EngineMode, scale: Scale) -> DeviceConfig {
    DeviceConfig {
        geometry: NandGeometry {
            blocks: scale.pick(512, 1024),
            pages_per_block: 256,
            page_size: 4096,
            spare_size: 128,
            channels: 8,
        },
        profile: sys.profile(),
        cache_budget_bytes: scale.pick(24 << 10, 96 << 10),
        gc: GcConfig { low_watermark: 3, high_watermark: 6, ..Default::default() },
        gc_reserve_blocks: 2,
        shards: 1,
        engine,
        hasher: SigHasher::default(),
        rhik: rhik_core::RhikConfig { initial_dir_bits: 2, ..Default::default() },
        hot_cache: rhik_kvssd::CacheConfig::off(),
    }
}

/// Run write-then-read at one value size; returns (write MB/s, read MB/s).
fn run_cell(
    sys: System,
    engine: EngineMode,
    value_bytes: usize,
    total_bytes: u64,
    scale: Scale,
) -> (f64, f64) {
    let count = (total_bytes / value_bytes as u64).max(16);
    let cfg = device_config(sys, engine, scale);

    macro_rules! drive {
        ($dev:expr) => {{
            let mut dev = $dev;
            let mut wgen = Keygen::new(KeyStream::Sequential, 16, 7);
            let w = WorkloadDriver::fill(&mut dev, &mut wgen, count, value_bytes).expect("fill");
            let mut rgen = Keygen::new(KeyStream::Sequential, 16, 7);
            let r = WorkloadDriver::read(&mut dev, &mut rgen, count).expect("read");
            (w.bytes_per_sec() / 1e6, r.bytes_per_sec() / 1e6)
        }};
    }

    match sys {
        System::Rhik => drive!(KvssdDevice::<RhikIndex>::rhik(cfg)),
        _ => drive!(KvssdDevice::<MultiLevelIndex>::multilevel(
            cfg,
            MultiLevelConfig { initial_bits: 2, max_levels: 8, hop_width: 32 },
        )),
    }
}

fn main() {
    let scale = Scale::from_args();
    let total_bytes: u64 = scale.pick(24 << 20, 256 << 20);
    let systems = [System::Kvssd, System::Kvemu, System::Rhik];

    println!("=== Fig. 6: normalized throughput vs value size (16 B keys) ===");
    println!("volume per cell: {}\n", fmt_bytes(total_bytes));

    let mut emitted = Vec::new();
    for (panel, engine, sizes, is_write) in [
        (
            "(a) async writes",
            EngineMode::Async { queue_depth: 32 },
            [4 << 10, 64 << 10, 256 << 10, 1 << 20],
            true,
        ),
        (
            "(b) async reads",
            EngineMode::Async { queue_depth: 32 },
            [4 << 10, 64 << 10, 256 << 10, 1 << 20],
            false,
        ),
        ("(c) sync writes", EngineMode::Sync, [4 << 10, 32 << 10, 256 << 10, 1 << 20], true),
        ("(d) sync reads", EngineMode::Sync, [4 << 10, 32 << 10, 256 << 10, 1 << 20], false),
    ] {
        println!("{panel}");
        let mut rows = vec![{
            let mut h = vec!["value size".to_string()];
            for sys in systems {
                h.push(format!("{} MB/s", sys.name()));
                h.push(format!("{} norm", sys.name()));
            }
            h
        }];
        let mut panel_json = Vec::new();
        for &vs in &sizes {
            let mut mbps = Vec::new();
            for sys in systems {
                let (w, r) = run_cell(sys, engine, vs, total_bytes, scale);
                mbps.push(if is_write { w } else { r });
            }
            let baseline = mbps[0].max(1e-9);
            let mut row = vec![fmt_bytes(vs as u64)];
            for &m in &mbps {
                row.push(format!("{m:.1}"));
                row.push(format!("{:.2}", m / baseline));
            }
            rows.push(row);
            panel_json.push(serde_json::json!({
                "value_bytes": vs,
                "kvssd_mbps": mbps[0],
                "kvemu_mbps": mbps[1],
                "rhik_mbps": mbps[2],
            }));
        }
        print!("{}", render_table(&rows));
        println!();
        emitted.push(serde_json::json!({ "panel": panel, "cells": panel_json }));
    }

    println!("shape check (paper): RHIK >= KVEMU at almost all value sizes for writes;");
    println!("RHIK wins grow with large values on reads; async beats sync throughout.");
    rhik_bench::emit_json("fig6", &serde_json::json!({ "panels": emitted }));
}
