//! Table I — request-size diversity of production KV workloads and the
//! key counts a 4 TB KVSSD must support.
//!
//! Regenerates both columns of the paper's Table I plus the RocksDB
//! deployment averages cited in §III, and checks them against the PM983's
//! observed ~3.1 B-key ceiling.
//!
//! ```sh
//! cargo run -p rhik-bench --release --bin table1
//! ```

use rhik_bench::render_table;
use rhik_workloads::distributions::{keys_for_avg_size, rocksdb_avg_pair_bytes, SizeDistribution};

const FOUR_TB: u64 = 4 * 1000 * 1000 * 1000 * 1000;
const PM983_MAX_KEYS: u64 = 3_100_000_000;

fn human(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.1} B", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.0} M", n as f64 / 1e6)
    } else {
        format!("{n}")
    }
}

fn size_label(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        format!("{} MB", bytes >> 20)
    } else if bytes >= 1 << 10 {
        format!("{} KB", bytes >> 10)
    } else {
        format!("{bytes} B")
    }
}

fn print_distribution(d: &SizeDistribution) {
    d.validate().expect("distribution must be a pdf");
    println!("{}", d.name);
    let mut rows = vec![vec!["request size".to_string(), "requests".to_string()]];
    for b in &d.buckets {
        rows.push(vec![
            format!("{}-{}", size_label(b.min_bytes.saturating_sub(1)), size_label(b.max_bytes)),
            format!("{:.1}%", b.fraction * 100.0),
        ]);
    }
    print!("{}", render_table(&rows));
    let (lo, hi) = d.implied_key_range(FOUR_TB);
    println!("=> {} - {} keys on a 4 TB KVSSD\n", human(lo), human(hi));
}

fn main() {
    println!("=== Table I: diversity in request sizes ===\n");
    let baidu = SizeDistribution::baidu_atlas_write();
    let fb = SizeDistribution::fb_memcached_etc();
    print_distribution(&baidu);
    print_distribution(&fb);

    println!("=== RocksDB deployments at Facebook (FAST '20) ===");
    let mut rows = vec![vec![
        "store".to_string(),
        "avg pair".to_string(),
        "keys / 4 TB".to_string(),
        "vs PM983 limit".to_string(),
    ]];
    for (name, avg) in rocksdb_avg_pair_bytes() {
        let keys = keys_for_avg_size(FOUR_TB, avg);
        rows.push(vec![
            name.to_string(),
            format!("{avg} B"),
            human(keys),
            if keys > PM983_MAX_KEYS { "EXCEEDS".into() } else { "fits".into() },
        ]);
    }
    print!("{}", render_table(&rows));

    let (fb_lo, fb_hi) = fb.implied_key_range(FOUR_TB);
    let (bd_lo, bd_hi) = baidu.implied_key_range(FOUR_TB);
    let (pfb_lo, pfb_hi) = fb.paper_reported_key_range();
    let (pbd_lo, pbd_hi) = baidu.paper_reported_key_range();
    println!("\nPM983 observed key ceiling: {} keys (§III).", human(PM983_MAX_KEYS));
    println!(
        "Baidu Atlas fits: paper {}-{}, our estimate {}-{}.",
        human(pbd_lo),
        human(pbd_hi),
        human(bd_lo),
        human(bd_hi),
    );
    println!(
        "FB Memcached exceeds: paper {}-{} ({}x over the ceiling), our estimate {}-{}.",
        human(pfb_lo),
        human(pfb_hi),
        pfb_hi / PM983_MAX_KEYS,
        human(fb_lo),
        human(fb_hi),
    );
    println!("This is the motivation for RHIK's virtually-unlimited-keys design.");

    rhik_bench::emit_json(
        "table1",
        &serde_json::json!({
            "capacity_bytes": FOUR_TB,
            "pm983_max_keys": PM983_MAX_KEYS,
            "baidu_keys": { "lo": bd_lo, "hi": bd_hi },
            "fb_keys": { "lo": fb_lo, "hi": fb_hi },
            "rocksdb": rocksdb_avg_pair_bytes().iter().map(|(n, a)| {
                serde_json::json!({ "store": n, "avg_pair_bytes": a,
                                    "keys": keys_for_avg_size(FOUR_TB, *a) })
            }).collect::<Vec<_>>(),
        }),
    );
}
