//! Sharded multi-queue scaling: threads × shards throughput matrix.
//!
//! Compares the global-mutex [`SharedKvssd`] baseline against
//! [`ShardedKvssd`] at 1/2/4 shards under 1/2/4 submitting threads, for
//! Zipfian (θ = 0.99) and uniform key streams. Two throughput metrics
//! per cell:
//!
//! * **device-time ops/s** — total commands over simulated device time
//!   (the paper's IOPS model; for the sharded device this is the max
//!   over per-shard clocks, since real submission queues drain in
//!   parallel). Deterministic, host-independent; this is the headline
//!   scaling number.
//! * **wall-clock ops/s** — host-side throughput. Only meaningful on a
//!   multi-core host; recorded for transparency (CI may have one core,
//!   where lock contention, not parallelism, is the visible difference).
//!
//! Emits `BENCH_scaling.json` in the working directory plus the shared
//! `target/experiments/scaling.json` blob.

use std::time::Instant;

use rhik_bench::{
    attribution_json, attribution_table, audit_requested, emit_json, reads_per_lookup_json,
    render_table, trace_dump_requested, Scale,
};
use rhik_kvssd::{DeviceConfig, KvssdDevice, ShardedKvssd, SharedKvssd, TelemetrySink};
use rhik_nand::DeviceProfile;
use rhik_workloads::{KeyStream, Keygen};
use serde_json::{json, Value};

const VALUE_BYTES: usize = 100;
const KEY_BYTES: usize = 16;

#[derive(Clone, Copy)]
struct Dist {
    name: &'static str,
    theta: Option<f64>,
}

fn stream_for(dist: Dist, population: u64) -> KeyStream {
    match dist.theta {
        Some(theta) => KeyStream::Zipf { population, theta },
        None => KeyStream::Uniform { population },
    }
}

struct RunResult {
    total_ops: u64,
    wall_secs: f64,
    device_secs: f64,
    /// Merged put-latency tail (p99 / p99.9, ns) — resize stalls and GC
    /// land here, so the tail shows what the throughput number hides.
    put_p99_ns: u64,
    put_p999_ns: u64,
    /// Merged get-latency percentiles (ns). The hot-object cache shows up
    /// here: DRAM hits record zero simulated device time, so an effective
    /// cache collapses p50 and, at high hit rates, the tail too.
    get_p50_ns: u64,
    get_p99_ns: u64,
    get_p999_ns: u64,
    /// Hot-object cache counters, when the run had the cache enabled.
    cache: Option<rhik_kvssd::CacheStats>,
}

impl RunResult {
    fn wall_ops_per_sec(&self) -> f64 {
        self.total_ops as f64 / self.wall_secs.max(1e-9)
    }

    fn device_ops_per_sec(&self) -> f64 {
        self.total_ops as f64 / self.device_secs.max(1e-12)
    }
}

/// `--gate-min-ratio <f>`: fail the run (exit 1) unless, for every
/// distribution, the sharded 4-thread/4-shard wall-clock throughput is
/// at least `f` times the 1-thread/1-shard figure. CI passes a factor
/// suited to the runner's core count; multi-core hosts can demand the
/// near-linear headline, single-core smoke runs assert no collapse.
fn gate_min_ratio() -> Option<f64> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--gate-min-ratio" {
            return args.next().and_then(|v| v.parse().ok());
        }
        if let Some(v) = a.strip_prefix("--gate-min-ratio=") {
            return v.parse().ok();
        }
    }
    None
}

/// `--cache-budget <bytes>`: enable the DRAM hot-object cache tier with
/// this budget for every *sharded* matrix run (the comparison section
/// below always runs both ways regardless). Default: off, so default
/// results are identical to a build without the cache tier.
fn cache_budget() -> Option<u64> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--cache-budget" {
            return args.next().and_then(|v| v.parse().ok());
        }
        if let Some(v) = a.strip_prefix("--cache-budget=") {
            return v.parse().ok();
        }
    }
    None
}

/// Budget for the always-on cached-vs-uncached comparison: a hard cap at
/// ~2/3 of the loaded working set (6000 × ~180 B charged ≈ 1.05 MiB).
/// The zipfian trace touches ~3.5k distinct keys, so the budget holds the
/// warmed head with a little slack against per-stripe imbalance — the
/// steady-state regime where the DRAM tier pays. Squeezing the budget
/// further degrades gracefully (the `--cache-budget` smoke runs and the
/// property tests exercise hard eviction pressure).
const COMPARISON_BUDGET: u64 = 704 * 1024;

struct CachePhase {
    get_p50_ns: u64,
    get_p99_ns: u64,
    get_p999_ns: u64,
    measured_ops: u64,
    /// Simulated device time consumed by the measured phase. Zero when
    /// every measured get was served from DRAM.
    device_secs: f64,
    cache: Option<rhik_kvssd::CacheStats>,
}

impl CachePhase {
    fn device_throughput_label(&self) -> String {
        if self.device_secs < 1e-12 {
            "all-DRAM (zero device time)".to_string()
        } else {
            format!("{:.3} Mops/s", self.measured_ops as f64 / self.device_secs / 1e6)
        }
    }

    fn device_ops_per_sec(&self) -> Option<f64> {
        (self.device_secs >= 1e-12).then(|| self.measured_ops as f64 / self.device_secs)
    }
}

/// The cached-vs-uncached comparison run: load the population, warm with
/// one zipfian pass, then measure a replay of the same get trace — the
/// steady state of a skewed serving workload, with no compulsory misses
/// muddying the number (every measured key was seen once before; whether
/// it *hits* is decided purely by what the budget + TinyLFU kept
/// resident). A telemetry snapshot diff isolates the measured phase's
/// latency histogram from load and warmup.
fn run_cache_phase(dist: Dist, population: u64, ops: u64, budget: Option<u64>) -> CachePhase {
    let mut cfg = config().with_shards(4);
    if let Some(b) = budget {
        cfg = cfg.with_hot_cache(b);
    }
    let dev = ShardedKvssd::rhik(cfg);
    let sink = TelemetrySink::enabled();
    dev.set_telemetry(sink.clone());
    let value = vec![0xAB; VALUE_BYTES];
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let dev = dev.clone();
            let value = &value;
            scope.spawn(move || {
                let keygen = Keygen::new(KeyStream::Sequential, KEY_BYTES, 0);
                let lo = population * t / 4;
                let hi = population * (t + 1) / 4;
                for id in lo..hi {
                    dev.put(&keygen.key_for(id), value).unwrap();
                }
            });
        }
    });
    // Warm after the load fully quiesces: overlapping puts would keep
    // bumping invalidation versions and racing concurrent fills out of
    // admission, making the warmed set depend on thread interleaving.
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let dev = dev.clone();
            scope.spawn(move || {
                let mut gen = Keygen::new(stream_for(dist, population), KEY_BYTES, 0xF111 + t);
                for _ in 0..ops / 4 {
                    let _ = dev.get(&gen.next_key()).unwrap();
                }
            });
        }
    });
    let warm = sink.snapshot().expect("sink enabled");
    let device_start = dev.device_elapsed_secs();
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let dev = dev.clone();
            scope.spawn(move || {
                // Same seed as the warm pass: replay the trace.
                let mut gen = Keygen::new(stream_for(dist, population), KEY_BYTES, 0xF111 + t);
                for _ in 0..ops / 4 {
                    let _ = dev.get(&gen.next_key()).unwrap();
                }
            });
        }
    });
    let measured = sink.snapshot().expect("sink enabled").since(&warm);
    let (p50, p99, p999) = measured
        .histogram("get_latency_ns")
        .map_or((0, 0, 0), |h| (h.p50_ns(), h.p99_ns(), h.p999_ns()));
    CachePhase {
        get_p50_ns: p50,
        get_p99_ns: p99,
        get_p999_ns: p999,
        measured_ops: (ops / 4) * 4,
        device_secs: (dev.device_elapsed_secs() - device_start).max(0.0),
        cache: dev.hot_cache_stats(),
    }
}

fn cache_stats_json(c: &rhik_kvssd::CacheStats) -> Value {
    json!({
        "lookups": c.lookups,
        "hits": c.hits,
        "stale_hits": c.stale_hits,
        "admits": c.admits,
        "rejects": c.rejects,
        "evictions": c.evictions,
        "replica_admits": c.replica_admits,
        "bytes": c.bytes,
        "entries": c.entries,
    })
}

fn config() -> DeviceConfig {
    // Realistic (KVEMU-like) timing so the simulated clock measures
    // something; `small()` uses the instant profile.
    DeviceConfig::small().with_profile(DeviceProfile::kvemu_like())
}

/// Each of `threads` workers loads a disjoint slice of the population,
/// then issues `ops / threads` mixed commands (50 % get / 50 % update)
/// with keys drawn from `dist`.
fn run_sharded(
    shards: u32,
    threads: u64,
    dist: Dist,
    population: u64,
    ops: u64,
    sink: Option<&TelemetrySink>,
    cache_budget: Option<u64>,
) -> RunResult {
    let mut cfg = config().with_shards(shards);
    if let Some(budget) = cache_budget {
        cfg = cfg.with_hot_cache(budget);
    }
    let dev = ShardedKvssd::rhik(cfg);
    if let Some(s) = sink {
        dev.set_telemetry(s.clone());
    }
    let value = vec![0xAB; VALUE_BYTES];
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let dev = dev.clone();
            let value = &value;
            scope.spawn(move || {
                let keygen = Keygen::new(KeyStream::Sequential, KEY_BYTES, 0);
                let lo = population * t / threads;
                let hi = population * (t + 1) / threads;
                for id in lo..hi {
                    dev.put(&keygen.key_for(id), value).unwrap();
                }
                let mut gen = Keygen::new(stream_for(dist, population), KEY_BYTES, 0xC0FFEE + t);
                for i in 0..ops / threads {
                    let key = gen.next_key();
                    if i % 2 == 0 {
                        let _ = dev.get(&key).unwrap();
                    } else {
                        dev.put(&key, value).unwrap();
                    }
                }
            });
        }
    });
    // `--audit`: with all submitters joined, every shard is at a command
    // boundary — walk the full cross-layer state (fresh auditor per
    // device; cursors must not mix across runs).
    if audit_requested() {
        let report = dev.audit(&mut rhik_audit::DeviceAuditor::new());
        assert!(report.is_ok(), "--audit found invariant violations:\n{report}");
        eprintln!("[audit] sharded {shards}s/{threads}t: clean");
    }
    let puts = dev.put_latencies();
    let gets = dev.get_latencies();
    RunResult {
        total_ops: population + (ops / threads) * threads,
        wall_secs: start.elapsed().as_secs_f64(),
        device_secs: dev.device_elapsed_secs(),
        put_p99_ns: puts.p99_ns(),
        put_p999_ns: puts.p999_ns(),
        get_p50_ns: gets.p50_ns(),
        get_p99_ns: gets.p99_ns(),
        get_p999_ns: gets.p999_ns(),
        cache: dev.hot_cache_stats(),
    }
}

fn run_shared(threads: u64, dist: Dist, population: u64, ops: u64) -> RunResult {
    let dev = SharedKvssd::new(KvssdDevice::rhik(config()));
    let value = vec![0xAB; VALUE_BYTES];
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let dev = dev.clone();
            let value = &value;
            scope.spawn(move || {
                let keygen = Keygen::new(KeyStream::Sequential, KEY_BYTES, 0);
                let lo = population * t / threads;
                let hi = population * (t + 1) / threads;
                for id in lo..hi {
                    dev.put(&keygen.key_for(id), value).unwrap();
                }
                let mut gen = Keygen::new(stream_for(dist, population), KEY_BYTES, 0xC0FFEE + t);
                for i in 0..ops / threads {
                    let key = gen.next_key();
                    if i % 2 == 0 {
                        let _ = dev.get(&key).unwrap();
                    } else {
                        dev.put(&key, value).unwrap();
                    }
                }
            });
        }
    });
    if audit_requested() {
        let report = dev.audit(&mut rhik_audit::DeviceAuditor::new());
        assert!(report.is_ok(), "--audit found invariant violations:\n{report}");
        eprintln!("[audit] shared {threads}t: clean");
    }
    let (device_secs, put_p99_ns, put_p999_ns, get_p50_ns, get_p99_ns, get_p999_ns) = dev
        .with_device(|d| {
            let gets = d.get_latencies();
            (
                d.elapsed_secs(),
                d.put_latencies().p99_ns(),
                d.put_latencies().p999_ns(),
                gets.p50_ns(),
                gets.p99_ns(),
                gets.p999_ns(),
            )
        });
    RunResult {
        total_ops: population + (ops / threads) * threads,
        wall_secs: start.elapsed().as_secs_f64(),
        device_secs,
        put_p99_ns,
        put_p999_ns,
        get_p50_ns,
        get_p99_ns,
        get_p999_ns,
        cache: None,
    }
}

fn main() {
    let scale = Scale::from_args();
    let population: u64 = scale.pick(6_000, 40_000);
    let ops: u64 = scale.pick(20_000, 160_000);
    let dists =
        [Dist { name: "zipf-0.99", theta: Some(0.99) }, Dist { name: "uniform", theta: None }];
    let thread_counts = [1u64, 2, 4];
    let shard_counts = [1u32, 2, 4];

    let matrix_cache = cache_budget();
    if let Some(budget) = matrix_cache {
        eprintln!("[cfg] hot-object cache enabled for sharded runs: {budget} B budget");
    }
    let mut rows = vec![vec![
        "dist".to_string(),
        "mode".to_string(),
        "threads".to_string(),
        "shards".to_string(),
        "device Mops/s".to_string(),
        "wall Mops/s".to_string(),
        "get p50 µs".to_string(),
        "get p99 µs".to_string(),
        "get p99.9 µs".to_string(),
        "put p99 µs".to_string(),
        "put p99.9 µs".to_string(),
    ]];
    let mut results: Vec<Value> = Vec::new();
    // dist name -> (shared@4t, sharded@4t4s) device-time ops/s.
    let mut acceptance: Vec<(String, f64, f64)> = Vec::new();
    // dist name -> (sharded 1t/1s, sharded 4t/4s) wall-clock ops/s.
    let mut wall_scaling: Vec<(String, f64, f64)> = Vec::new();

    for dist in dists {
        for &threads in &thread_counts {
            eprintln!("[run] dist={} mode=shared threads={threads}", dist.name);
            let r = run_shared(threads, dist, population, ops);
            rows.push(vec![
                dist.name.to_string(),
                "shared".to_string(),
                threads.to_string(),
                "-".to_string(),
                format!("{:.3}", r.device_ops_per_sec() / 1e6),
                format!("{:.3}", r.wall_ops_per_sec() / 1e6),
                format!("{:.1}", r.get_p50_ns as f64 / 1e3),
                format!("{:.1}", r.get_p99_ns as f64 / 1e3),
                format!("{:.1}", r.get_p999_ns as f64 / 1e3),
                format!("{:.1}", r.put_p99_ns as f64 / 1e3),
                format!("{:.1}", r.put_p999_ns as f64 / 1e3),
            ]);
            if threads == 4 {
                acceptance.push((dist.name.to_string(), r.device_ops_per_sec(), 0.0));
            }
            results.push(json!({
                "dist": dist.name,
                "mode": "shared",
                "threads": threads,
                "shards": 1,
                "total_ops": r.total_ops,
                "device_secs": r.device_secs,
                "wall_secs": r.wall_secs,
                "device_ops_per_sec": r.device_ops_per_sec(),
                "wall_ops_per_sec": r.wall_ops_per_sec(),
                "get_p50_ns": r.get_p50_ns,
                "get_p99_ns": r.get_p99_ns,
                "get_p999_ns": r.get_p999_ns,
                "put_p99_ns": r.put_p99_ns,
                "put_p999_ns": r.put_p999_ns,
            }));
        }
        for &threads in &thread_counts {
            for &shards in &shard_counts {
                eprintln!(
                    "[run] dist={} mode=sharded threads={threads} shards={shards}",
                    dist.name
                );
                let r = run_sharded(shards, threads, dist, population, ops, None, matrix_cache);
                rows.push(vec![
                    dist.name.to_string(),
                    "sharded".to_string(),
                    threads.to_string(),
                    shards.to_string(),
                    format!("{:.3}", r.device_ops_per_sec() / 1e6),
                    format!("{:.3}", r.wall_ops_per_sec() / 1e6),
                    format!("{:.1}", r.get_p50_ns as f64 / 1e3),
                    format!("{:.1}", r.get_p99_ns as f64 / 1e3),
                    format!("{:.1}", r.get_p999_ns as f64 / 1e3),
                    format!("{:.1}", r.put_p99_ns as f64 / 1e3),
                    format!("{:.1}", r.put_p999_ns as f64 / 1e3),
                ]);
                if threads == 4 && shards == 4 {
                    let slot = acceptance
                        .iter_mut()
                        .find(|(name, _, _)| name == dist.name)
                        .expect("shared baseline ran first");
                    slot.2 = r.device_ops_per_sec();
                }
                if threads == 1 && shards == 1 {
                    wall_scaling.push((dist.name.to_string(), r.wall_ops_per_sec(), 0.0));
                } else if threads == 4 && shards == 4 {
                    let slot = wall_scaling
                        .iter_mut()
                        .find(|(name, _, _)| name == dist.name)
                        .expect("1t/1s cell ran first");
                    slot.2 = r.wall_ops_per_sec();
                }
                let mut row = json!({
                    "dist": dist.name,
                    "mode": "sharded",
                    "threads": threads,
                    "shards": shards,
                    "total_ops": r.total_ops,
                    "device_secs": r.device_secs,
                    "wall_secs": r.wall_secs,
                    "device_ops_per_sec": r.device_ops_per_sec(),
                    "wall_ops_per_sec": r.wall_ops_per_sec(),
                    "get_p50_ns": r.get_p50_ns,
                    "get_p99_ns": r.get_p99_ns,
                    "get_p999_ns": r.get_p999_ns,
                    "put_p99_ns": r.put_p99_ns,
                    "put_p999_ns": r.put_p999_ns,
                });
                if let (Value::Object(pairs), Some(cache)) = (&mut row, &r.cache) {
                    pairs.push(("cache".to_string(), cache_stats_json(cache)));
                }
                results.push(row);
            }
        }
    }

    println!("{}", render_table(&rows));
    let mut speedups: Vec<Value> = Vec::new();
    for (name, shared, sharded) in &acceptance {
        let speedup = sharded / shared;
        println!(
            "{name}: 4 threads / 4 shards vs shared@4t — {speedup:.2}x \
             ({:.3} vs {:.3} device Mops/s)",
            sharded / 1e6,
            shared / 1e6
        );
        speedups.push(json!({
            "dist": name.clone(),
            "shared_4t_device_ops_per_sec": *shared,
            "sharded_4t4s_device_ops_per_sec": *sharded,
            "speedup": speedup,
        }));
    }

    let mut wall_ratios: Vec<Value> = Vec::new();
    for (name, one, four) in &wall_scaling {
        let ratio = four / one.max(1e-9);
        println!(
            "{name}: wall-clock 4t/4s vs 1t/1s — {ratio:.2}x \
             ({:.0} vs {:.0} ops/s; parallelism needs host cores)",
            four, one
        );
        wall_ratios.push(json!({
            "dist": name.clone(),
            "sharded_1t1s_wall_ops_per_sec": *one,
            "sharded_4t4s_wall_ops_per_sec": *four,
            "ratio": ratio,
        }));
    }

    // Cached-vs-uncached: the same warmed read phase at 4 threads /
    // 4 shards with the hot-object cache off and then on under a hard
    // DRAM cap (see `run_cache_phase`).
    let comparison_budget = matrix_cache.unwrap_or(COMPARISON_BUDGET);
    let zipf = dists[0];
    eprintln!("[run] cache-comparison dist={} 4t/4s cache=off", zipf.name);
    let off = run_cache_phase(zipf, population, ops, None);
    eprintln!(
        "[run] cache-comparison dist={} 4t/4s cache=on budget={comparison_budget}",
        zipf.name
    );
    let on = run_cache_phase(zipf, population, ops, Some(comparison_budget));
    let cache = on.cache.expect("cache-on run has stats");
    let hit_pct =
        if cache.lookups == 0 { 0.0 } else { 100.0 * cache.hits as f64 / cache.lookups as f64 };
    println!(
        "\n{}: read phase with hot-object cache at {} KiB budget \
         ({:.1}% hit rate, {} B resident, {} evictions, {} TinyLFU rejects):",
        zipf.name,
        comparison_budget / 1024,
        hit_pct,
        cache.bytes,
        cache.evictions,
        cache.rejects,
    );
    println!(
        "  get p50 {:.1} -> {:.1} µs ({:.1}x), p99 {:.1} -> {:.1} µs ({:.1}x), \
         p99.9 {:.1} -> {:.1} µs, device throughput {} -> {}",
        off.get_p50_ns as f64 / 1e3,
        on.get_p50_ns as f64 / 1e3,
        off.get_p50_ns as f64 / (on.get_p50_ns as f64).max(1.0),
        off.get_p99_ns as f64 / 1e3,
        on.get_p99_ns as f64 / 1e3,
        off.get_p99_ns as f64 / (on.get_p99_ns as f64).max(1.0),
        off.get_p999_ns as f64 / 1e3,
        on.get_p999_ns as f64 / 1e3,
        off.device_throughput_label(),
        on.device_throughput_label(),
    );
    let throughput_or_null =
        |p: &CachePhase| p.device_ops_per_sec().map_or(Value::Null, Value::from);
    let cache_comparison = json!({
        "dist": zipf.name,
        "threads": 4,
        "shards": 4,
        "budget_bytes": comparison_budget,
        "workload": "warmed get-only zipf trace replay (telemetry snapshot diff)",
        "measured_ops": off.measured_ops,
        "hit_rate_pct": hit_pct,
        "off": {
            "device_secs": off.device_secs,
            "device_ops_per_sec": throughput_or_null(&off),
            "get_p50_ns": off.get_p50_ns,
            "get_p99_ns": off.get_p99_ns,
            "get_p999_ns": off.get_p999_ns,
        },
        "on": {
            "device_secs": on.device_secs,
            "device_ops_per_sec": throughput_or_null(&on),
            "get_p50_ns": on.get_p50_ns,
            "get_p99_ns": on.get_p99_ns,
            "get_p999_ns": on.get_p999_ns,
            "cache": cache_stats_json(&cache),
        },
        "get_p50_speedup": off.get_p50_ns as f64 / (on.get_p50_ns as f64).max(1.0),
        "get_p99_speedup": off.get_p99_ns as f64 / (on.get_p99_ns as f64).max(1.0),
    });

    let blob = json!({
        "experiment": "scaling",
        "scale": scale.pick("small", "full"),
        "metric_note": "device_ops_per_sec uses the simulated device clock \
                        (max over shard queues); wall_ops_per_sec depends on host cores",
        "population": population,
        "mixed_ops": ops,
        "value_bytes": VALUE_BYTES as u64,
        "key_bytes": KEY_BYTES as u64,
        "cache_budget_bytes": matrix_cache.map_or(Value::Null, Value::from),
        "results": results,
        "speedup_4t4s_vs_shared_4t": speedups,
        "wall_scaling_4t4s_vs_1t1s": wall_ratios,
        "cache_comparison": cache_comparison,
    });
    emit_json("scaling", &blob);
    if let Ok(s) = serde_json::to_string_pretty(&blob) {
        let path = "BENCH_scaling.json";
        if std::fs::write(path, s).is_ok() {
            eprintln!("[wrote {path}]");
        }
    }

    // The smoke gate runs after the artifacts are written, so a failing
    // run still leaves the numbers behind for diagnosis.
    if let Some(min) = gate_min_ratio() {
        let mut failed = false;
        for (name, one, four) in &wall_scaling {
            let ratio = four / one.max(1e-9);
            if ratio < min {
                eprintln!(
                    "[gate] {name}: 4t/4s wall throughput is {ratio:.2}x of 1t/1s, \
                     below --gate-min-ratio {min}"
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("[gate] wall-clock 4t/4s >= {min}x of 1t/1s for every distribution");
    }

    // `--trace-dump`: one extra instrumented 4-shard run. Shards share
    // the sink, spans are tagged per shard, and the dump attributes
    // device time across stages for the merged multi-queue stream.
    if trace_dump_requested() {
        let sink = TelemetrySink::with_trace_capacity((population + ops) as usize);
        let dist = dists[0];
        eprintln!("[run] trace-dump dist={} mode=sharded threads=2 shards=4", dist.name);
        let _ = run_sharded(4, 2, dist, population, ops, Some(&sink), matrix_cache);
        let attr = sink.attribution();
        let rpl = sink.reads_per_lookup().unwrap_or_default();
        println!("per-stage device-time attribution (sharded run, telemetry on):");
        println!("{}", attribution_table(&attr));
        let trace = json!({
            "experiment": "scaling_trace",
            "scale": scale.pick("small", "full"),
            "dist": dist.name,
            "shards": 4,
            "threads": 2,
            "attribution": attribution_json(&attr),
            "reads_per_lookup": reads_per_lookup_json(&rpl),
            "trace_spans_dropped": sink.trace_dropped(),
        });
        emit_json("scaling_trace", &trace);
    }
}
