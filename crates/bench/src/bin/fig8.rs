//! Fig. 8 — sensitivity analysis.
//!
//! **(a)** Collision trends vs key size: insert streams of 16 B and 128 B
//! keys, tracking the fraction of keys whose record-layer *home slot* was
//! already occupied (an index-local collision that hopscotch must then
//! resolve), plus the birthday-bound estimate of full 64-bit signature
//! collisions. The paper's claim is that the trends are the same for both
//! key sizes — the signature space, not the key length, governs collisions.
//!
//! **(b)** Collision handling vs occupancy: run RHIK at resize thresholds
//! of 60/70/80/90 % and measure the percentage of inserts aborted by
//! hopscotch (`TableFull`). The paper: "collision handling degrades
//! heavily above 80 % index occupancy."
//!
//! ```sh
//! cargo run -p rhik-bench --release --bin fig8 [--scale full]
//! ```

use rhik_bench::{render_table, Scale};
use rhik_core::{RecordTable, RhikConfig};

use rhik_nand::Ppa;
use rhik_sigs::{estimate, SigHasher};

fn keygen(id: u64, key_size: usize) -> Vec<u8> {
    // Distinguishing digits first so truncation to small key sizes never
    // collapses distinct ids into identical keys.
    let mut key = format!("{id:016x}").into_bytes();
    while key.len() < key_size {
        key.push(b'.');
    }
    key.truncate(key_size);
    key
}

/// Panel (a): home-slot collision fraction per key size, at checkpoints.
fn panel_a(scale: Scale) {
    let records_per_table = RhikConfig::records_per_table(32 * 1024); // 1927
    let total_keys: u64 = scale.pick(2_000_000, 20_000_000);
    let checkpoints: Vec<u64> = (1..=10).map(|i| total_keys / 10 * i).collect();
    let hasher = SigHasher::default();

    println!("=== Fig. 8a: collision trend vs key size ===\n");
    let mut rows = vec![vec![
        "keys (M)".to_string(),
        "16B-key home collisions %".to_string(),
        "128B-key home collisions %".to_string(),
        "est. 64-bit sig collisions %".to_string(),
    ]];

    let mut results: Vec<Vec<f64>> = vec![Vec::new(), Vec::new()];
    for (ki, key_size) in [16usize, 128].into_iter().enumerate() {
        // Track home-slot occupancy across the table population an index of
        // this size would have (tables sized per Eq. 1, count per Eq. 2).
        let tables = (total_keys as usize).div_ceil(records_per_table as usize).next_power_of_two();
        let mut occupied = vec![false; tables * records_per_table as usize];
        let probe_table = RecordTable::new(records_per_table, 32);
        let mut collisions = 0u64;
        let mut cp = 0;
        for i in 0..total_keys {
            let sig = hasher.sign(&keygen(i, key_size));
            let table = (sig.low_bits(tables.trailing_zeros()) as usize) % tables;
            let home = probe_table.home_slot(sig) as usize;
            let slot = table * records_per_table as usize + home;
            if occupied[slot] {
                collisions += 1;
            } else {
                occupied[slot] = true;
            }
            if cp < checkpoints.len() && i + 1 == checkpoints[cp] {
                results[ki].push(100.0 * collisions as f64 / (i + 1) as f64);
                cp += 1;
            }
        }
    }

    for (i, &n) in checkpoints.iter().enumerate() {
        rows.push(vec![
            format!("{:.1}", n as f64 / 1e6),
            format!("{:.3}", results[0][i]),
            format!("{:.3}", results[1][i]),
            format!("{:.6}", estimate::expected_collision_pct(n, 64)),
        ]);
    }
    print!("{}", render_table(&rows));

    let divergence: f64 =
        results[0].iter().zip(&results[1]).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
    println!(
        "\nmax divergence between the two key sizes: {divergence:.3} pp — \
         {} (paper: different key sizes show similar collision trends)\n",
        if divergence < 2.0 { "trends match" } else { "TRENDS DIVERGE" }
    );

    rhik_bench::emit_json(
        "fig8a",
        &serde_json::json!({
            "checkpoints": checkpoints,
            "collision_pct_16B": results[0].clone(),
            "collision_pct_128B": results[1].clone(),
            "max_divergence_pp": divergence,
        }),
    );
}

/// Panel (b): hopscotch abort percentage while filling record-layer
/// tables to a target occupancy — the steady-state collision pressure an
/// index configured with that resize threshold operates under.
fn panel_b(scale: Scale) {
    let records = RhikConfig::records_per_table(32 * 1024); // 1927
    let tables: usize = scale.pick(512, 4_096);
    let checkpoints = 10;
    println!("=== Fig. 8b: collision handling vs occupancy ===\n");

    let hasher = SigHasher::default();
    let mut rows = vec![{
        let mut h = vec!["keys (M)".to_string()];
        for occ in [60, 70, 80, 90] {
            h.push(format!("{occ}% occ aborts %"));
        }
        h
    }];

    let mut series: Vec<Vec<f64>> = Vec::new();
    let mut key_axis: Vec<u64> = Vec::new();
    for (oi, occupancy) in [0.60f64, 0.70, 0.80, 0.90].into_iter().enumerate() {
        let per_table = (records as f64 * occupancy) as u64;
        let total = per_table * tables as u64;
        let mut tabs: Vec<RecordTable> =
            (0..tables).map(|_| RecordTable::new(records, 32)).collect();
        let mut aborts = 0u64;
        let mut attempted = 0u64;
        let mut col = Vec::new();
        let mut next_cp = total / checkpoints;
        let mut i = 0u64;
        while attempted < total {
            let sig = hasher.sign(&keygen(i, 16));
            i += 1;
            let t = (sig.low_bits(32) as usize) % tables;
            if tabs[t].len() as u64 >= per_table {
                continue; // this table reached its target fill
            }
            attempted += 1;
            match tabs[t].insert(sig, Ppa::new(0, 0)) {
                rhik_core::TableInsert::Inserted => {}
                rhik_core::TableInsert::Full => aborts += 1,
                rhik_core::TableInsert::Updated { .. } => {}
            }
            if attempted >= next_cp {
                col.push(100.0 * aborts as f64 / attempted as f64);
                if oi == 0 {
                    key_axis.push(attempted);
                }
                next_cp += total / checkpoints;
            }
        }
        series.push(col);
    }

    for (ci, &keys) in key_axis.iter().enumerate() {
        let mut row = vec![format!("{:.2}", keys as f64 / 1e6)];
        for col in &series {
            row.push(format!("{:.4}", col.get(ci).copied().unwrap_or(f64::NAN)));
        }
        rows.push(row);
    }
    print!("{}", render_table(&rows));

    let last = |i: usize| series[i].last().copied().unwrap_or(0.0);
    println!(
        "\nfinal abort rates: 60% -> {:.4}%, 70% -> {:.4}%, 80% -> {:.4}%, 90% -> {:.4}% — {}",
        last(0),
        last(1),
        last(2),
        last(3),
        if last(3) > last(2) * 2.0 {
            "collision handling degrades heavily above 80% (paper's knee)"
        } else {
            "no knee observed (check scale)"
        }
    );

    rhik_bench::emit_json(
        "fig8b",
        &serde_json::json!({
            "tables": tables,
            "records_per_table": records,
            "key_axis": key_axis,
            "aborts_pct": {
                "60": series[0].clone(), "70": series[1].clone(), "80": series[2].clone(), "90": series[3].clone(),
            },
        }),
    );
}

fn main() {
    let scale = Scale::from_args();
    panel_a(scale);
    panel_b(scale);
}
