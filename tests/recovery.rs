//! Crash-recovery integration tests: power loss wipes every DRAM
//! structure; the index must re-mount from its on-flash snapshot with a
//! bounded loss window (§IV-A's "periodically updated persistent copy").

use rhik::ftl::IndexBackend;
use rhik::kvssd::{DeviceConfig, KvssdDevice};

fn cfg() -> DeviceConfig {
    DeviceConfig::small()
}

/// Flush, crash, recover: every flushed pair survives with its contents.
#[test]
fn recover_after_clean_flush_loses_nothing() {
    let mut dev = KvssdDevice::rhik(cfg());
    for i in 0..1_500u64 {
        dev.put(format!("durable-{i:06}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
    }
    dev.flush().unwrap();
    let keys_before = dev.key_count();
    assert!(!dev.index().stats().resizes.is_empty(), "resizes exercised");

    let (mut ftl, _old_index) = dev.into_parts();
    ftl.simulate_power_loss();
    let mut recovered = KvssdDevice::recover_rhik(cfg(), ftl).expect("recovery");

    assert_eq!(recovered.key_count(), keys_before);
    for i in 0..1_500u64 {
        let v = recovered
            .get(format!("durable-{i:06}").as_bytes())
            .unwrap()
            .unwrap_or_else(|| panic!("key {i} lost after recovery"));
        assert_eq!(&v[..], format!("v{i}").as_bytes());
    }
    // The recovered device is fully writable.
    recovered.put(b"post-recovery", b"works").unwrap();
    assert!(recovered.get(b"post-recovery").unwrap().is_some());
}

/// Crash without a final flush: pairs written after the last metadata
/// flush may be lost, but nothing before it is, and nothing is corrupted.
#[test]
fn recovery_loss_window_is_bounded() {
    let mut dev = KvssdDevice::rhik(cfg());
    for i in 0..800u64 {
        dev.put(format!("pre-{i:06}").as_bytes(), b"pre").unwrap();
    }
    dev.flush().unwrap(); // ← loss boundary
    for i in 0..300u64 {
        dev.put(format!("post-{i:06}").as_bytes(), b"post").unwrap();
    }
    // No flush: the post-* index updates live in dirty cached tables and
    // the unflushed head page.
    let (mut ftl, _) = dev.into_parts();
    ftl.simulate_power_loss();
    let mut recovered = KvssdDevice::recover_rhik(cfg(), ftl).expect("recovery");

    // Every pre-flush pair survives.
    for i in 0..800u64 {
        assert!(
            recovered.get(format!("pre-{i:06}").as_bytes()).unwrap().is_some(),
            "pre-flush key {i} lost"
        );
    }
    // Post-flush pairs may or may not have made it (their table write-backs
    // could have been evicted to flash before the snapshot); whatever the
    // index resolves must read back consistently.
    let mut survived = 0;
    for i in 0..300u64 {
        if let Some(v) = recovered.get(format!("post-{i:06}").as_bytes()).unwrap() {
            assert_eq!(&v[..], b"post");
            survived += 1;
        }
    }
    assert!(recovered.key_count() >= 800);
    assert!(survived <= 300);
}

/// Recovery on a device that never flushed at all falls back to an empty
/// (but functional) index.
#[test]
fn recovery_without_snapshot_yields_empty_index() {
    let dev = KvssdDevice::rhik(cfg());
    let (mut ftl, _) = dev.into_parts();
    ftl.simulate_power_loss();
    let mut recovered = KvssdDevice::recover_rhik(cfg(), ftl).expect("recovery");
    assert_eq!(recovered.key_count(), 0);
    recovered.put(b"fresh", b"start").unwrap();
    assert_eq!(&recovered.get(b"fresh").unwrap().unwrap()[..], b"start");
}

/// Recovery after GC has churned blocks: snapshots and tables may have
/// been relocated by the collector; the newest complete snapshot must
/// still win.
#[test]
fn recovery_survives_gc_churn() {
    let mut dev = KvssdDevice::rhik(cfg());
    let value = vec![3u8; 8 * 1024];
    // ~3.2 MiB working set overwritten 12x (~38 MiB of logical writes on
    // 16 MiB of flash) forces heavy GC, flushing metadata each round.
    for round in 0..12u64 {
        for i in 0..400u64 {
            let mut v = value.clone();
            v[0] = round as u8;
            dev.put(format!("churn-{i:05}").as_bytes(), &v).unwrap();
        }
        dev.flush().unwrap();
    }
    assert!(dev.stats().gc_invocations > 0, "GC exercised: {:?}", dev.stats());

    let (mut ftl, _) = dev.into_parts();
    ftl.simulate_power_loss();
    let mut recovered = KvssdDevice::recover_rhik(cfg(), ftl).expect("recovery");
    assert_eq!(recovered.key_count(), 400);
    for i in 0..400u64 {
        let v = recovered.get(format!("churn-{i:05}").as_bytes()).unwrap().expect("key lost");
        assert_eq!(v[0], 11, "stale round resurfaced for key {i}");
    }
}
