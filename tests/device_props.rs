//! Device-level property test: a RHIK KVSSD behaves exactly like a
//! `HashMap<Vec<u8>, Vec<u8>>` under arbitrary put/get/delete/exist
//! interleavings — through write buffering, GC, resizes, and flushes.

use proptest::prelude::*;
use rhik::audit::DeviceAuditor;
use rhik::ftl::IndexBackend;
use rhik::kvssd::{DeviceConfig, KvError, KvssdDevice};
use std::collections::HashMap;

#[derive(Clone, Debug)]
enum Op {
    Put { key: u16, len: u16 },
    Get { key: u16 },
    Delete { key: u16 },
    Exist { key: u16 },
    Flush,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (any::<u16>(), 0u16..3000).prop_map(|(key, len)| Op::Put { key, len }),
        3 => any::<u16>().prop_map(|key| Op::Get { key }),
        2 => any::<u16>().prop_map(|key| Op::Delete { key }),
        1 => any::<u16>().prop_map(|key| Op::Exist { key }),
        1 => Just(Op::Flush),
    ]
}

fn key_bytes(key: u16) -> Vec<u8> {
    format!("prop-key-{key:05}").into_bytes()
}

/// Deterministic value derived from (key, len) so matches are meaningful.
fn value_bytes(key: u16, len: u16) -> Vec<u8> {
    (0..len).map(|i| (key as u32 + i as u32) as u8).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn device_matches_hashmap(ops in proptest::collection::vec(op_strategy(), 1..250)) {
        let mut dev = KvssdDevice::rhik(DeviceConfig::small());
        let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
        let mut auditor = DeviceAuditor::new();
        let mut since_audit = 0u32;

        for op in ops {
            match op {
                Op::Put { key, len } => {
                    let k = key_bytes(key);
                    let v = value_bytes(key, len);
                    match dev.put(&k, &v) {
                        Ok(()) => {
                            model.insert(k, v);
                        }
                        // Legitimate aborts leave prior state intact.
                        Err(KvError::KeyRejected) | Err(KvError::KeyCollision) => {}
                        Err(e) => prop_assert!(false, "put failed: {e}"),
                    }
                }
                Op::Get { key } => {
                    let k = key_bytes(key);
                    let got = dev.get(&k).unwrap();
                    let got = got.as_deref();
                    prop_assert_eq!(
                        got,
                        model.get(&k).map(Vec::as_slice),
                        "get({}) mismatch", String::from_utf8_lossy(&k)
                    );
                }
                Op::Delete { key } => {
                    let k = key_bytes(key);
                    match dev.delete(&k) {
                        Ok(()) => {
                            prop_assert!(model.remove(&k).is_some(), "deleted a ghost");
                        }
                        Err(KvError::KeyNotFound) => {
                            prop_assert!(!model.contains_key(&k));
                        }
                        Err(e) => prop_assert!(false, "delete failed: {e}"),
                    }
                }
                Op::Exist { key } => {
                    let k = key_bytes(key);
                    let report = dev.exist(&k).unwrap();
                    // Signature membership has false positives but never
                    // false negatives.
                    if model.contains_key(&k) {
                        prop_assert!(report.probably_exists, "false negative");
                    }
                }
                Op::Flush => dev.flush().unwrap(),
            }
            prop_assert_eq!(dev.key_count(), model.len() as u64);

            // Cross-layer invariant audit after every mutation batch.
            since_audit += 1;
            if since_audit == 25 {
                since_audit = 0;
                let report = dev.audit(&mut auditor);
                prop_assert!(report.is_ok(), "cross-layer audit failed:\n{}", report);
            }
        }

        // Final audit, plus invariants.
        for (k, v) in &model {
            let got = dev.get(k).unwrap();
            prop_assert_eq!(got.as_deref(), Some(v.as_slice()));
        }
        let report = dev.audit(&mut auditor);
        prop_assert!(report.is_ok(), "final cross-layer audit failed:\n{}", report);
        prop_assert!(dev.index().stats().pct_lookups_within(1) > 100.0 - 1e-9);
    }
}

// Same model check through a crash in the middle.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn device_matches_hashmap_across_crash(
        before in proptest::collection::vec((any::<u16>(), 0u16..1500), 1..80),
        after in proptest::collection::vec((any::<u16>(), 0u16..1500), 1..80),
    ) {
        let mut dev = KvssdDevice::rhik(DeviceConfig::small());
        let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
        for (key, len) in before {
            let (k, v) = (key_bytes(key), value_bytes(key, len));
            if dev.put(&k, &v).is_ok() {
                model.insert(k, v);
            }
        }
        dev.flush().unwrap();

        let (mut ftl, _) = dev.into_parts();
        ftl.simulate_power_loss();
        let mut dev = KvssdDevice::recover_rhik(DeviceConfig::small(), ftl).unwrap();

        // The rebuilt cross-layer state must satisfy every invariant.
        let mut auditor = DeviceAuditor::new();
        let report = dev.audit(&mut auditor);
        prop_assert!(report.is_ok(), "post-recovery audit failed:\n{}", report);

        // Everything flushed must be there.
        for (k, v) in &model {
            let got = dev.get(k).unwrap();
            prop_assert_eq!(got.as_deref(), Some(v.as_slice()));
        }
        // The recovered device keeps serving writes correctly.
        for (key, len) in after {
            let (k, v) = (key_bytes(key), value_bytes(key, len));
            if dev.put(&k, &v).is_ok() {
                model.insert(k, v);
            }
        }
        for (k, v) in &model {
            let got = dev.get(k).unwrap();
            prop_assert_eq!(got.as_deref(), Some(v.as_slice()));
        }
        let report = dev.audit(&mut auditor);
        prop_assert!(report.is_ok(), "final audit after recovered writes failed:\n{}", report);
    }
}
