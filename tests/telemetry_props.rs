//! Telemetry-driven property test for the paper's headline invariant:
//! every traced RHIK get needs at most one flash read — including while
//! an incremental directory resize is migrating slots underneath it.
//!
//! The trace measures the invariant from the outside: the device's
//! telemetry sink diffs the index's reads-per-lookup distribution around
//! each get, so migration-batch flash reads (charged to the resize, not
//! the lookup) cannot hide a lookup that secretly needed two reads.

use proptest::prelude::*;
use rhik::index::RhikConfig;
use rhik::kvssd::{DeviceConfig, KvssdDevice, Stage, TelemetrySink};

fn key(i: u32) -> Vec<u8> {
    format!("tp-{i:06}").into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn traced_gets_need_at_most_one_flash_read(
        keys in 1_500u32..2_200,
        probes in proptest::collection::vec(any::<u32>(), 48..96),
    ) {
        let mut cfg = DeviceConfig::small();
        // Start from a single-table directory and migrate one slot per
        // command, so the grow stream spends long stretches mid-resize
        // and probes land against a half-migrated directory.
        cfg.rhik = RhikConfig {
            initial_dir_bits: 0,
            resize_migration_batch: 1,
            ..Default::default()
        };
        let mut dev = KvssdDevice::rhik(cfg);
        let sink = TelemetrySink::enabled();
        dev.set_telemetry(sink.clone());

        let mut mid_resize_gets = 0u64;
        for i in 0..keys {
            dev.put(&key(i), b"v").unwrap();
            if dev.resize_in_progress() {
                let probe = probes[i as usize % probes.len()] % (i + 1);
                prop_assert!(dev.get(&key(probe)).unwrap().is_some());
                mid_resize_gets += 1;
            }
        }
        for &p in &probes {
            prop_assert!(dev.get(&key(p % keys)).unwrap().is_some());
        }

        // The workload must actually have exercised the mid-resize path,
        // and the trace must show migration batches were interleaved.
        prop_assert!(mid_resize_gets > 0, "no get ever ran mid-resize");
        prop_assert!(sink.attribution().row(Stage::ResizeMigrateBatch).events > 0);

        // The traced distribution IS the invariant, observed live.
        let rpl = sink.reads_per_lookup().unwrap();
        prop_assert!(rpl.lookups >= mid_resize_gets + probes.len() as u64);
        prop_assert!(rpl.invariant_ok(), "a traced lookup needed {} flash reads", rpl.max);
        prop_assert!((rpl.pct_within(1) - 100.0).abs() < 1e-9);
    }
}
