//! Adversarial interleaving of garbage collection and incremental
//! directory resize on the sharded device, with the cross-layer auditor
//! run between steps.
//!
//! The schedule is built to keep both subsystems active at once: fresh
//! inserts drive occupancy over the resize threshold (starting lazy
//! migrations), while overwrites and deletes churn out stale pages until
//! command-triggered GC collects blocks *while migrations are mid-way*.
//! The invariant pinned hardest here is single PPA ownership: a flash
//! page must never be claimed both by a GC victim's relocated record and
//! by a resize migration's un-split source table.

use rhik::audit::{DeviceAuditor, InvariantViolation};
use rhik::kvssd::{DeviceConfig, KvError, ShardedKvssd};

fn key(k: u64) -> Vec<u8> {
    format!("gcrz-{k:06}").into_bytes()
}

/// Value derived from (key, generation) so overwrites change content,
/// sized 2000–3500 B so most pairs fill a head page and some spill into
/// continuation pages.
fn val(k: u64, generation: u32) -> Vec<u8> {
    let len = 2000 + ((k * 37) % 1500) as usize;
    vec![(k as u8) ^ generation as u8; len]
}

fn assert_clean(report: &rhik::audit::AuditReport, context: &str) {
    // The blanket check subsumes it, but double PPA ownership is the
    // invariant this test exists to pin — name it in the failure.
    let double_owned = report
        .violations
        .iter()
        .any(|v| matches!(v, InvariantViolation::DoublePpaOwnership { .. }));
    assert!(!double_owned, "{context}: PPA owned by two keys (GC vs resize):\n{report}");
    assert!(report.is_ok(), "{context}:\n{report}");
}

#[test]
fn gc_and_resize_interleave_cleanly() {
    let mut cfg = DeviceConfig::small().with_shards(2);
    // One slot per migration slice keeps resizes in flight across many
    // rounds, so audits genuinely observe GC churning mid-migration.
    cfg.rhik.resize_migration_batch = 1;
    let dev = ShardedKvssd::rhik(cfg);
    let sink = rhik::telemetry::TelemetrySink::enabled();
    dev.set_telemetry(sink);
    let mut auditor = DeviceAuditor::new();

    let mut next_key = 0u64;
    let mut live: Vec<u64> = Vec::new();
    let mut mid_resize_audits = 0u32;

    for round in 0..120u32 {
        // Growth: fresh inserts push occupancy toward the next doubling.
        // The first put that lands mid-migration gets an immediate audit —
        // those are the states where GC and the resize genuinely overlap.
        let mut audited_mid_resize = false;
        for _ in 0..24 {
            match dev.put(&key(next_key), &val(next_key, 0)) {
                Ok(()) => live.push(next_key),
                Err(KvError::KeyRejected) | Err(KvError::KeyCollision) => {}
                Err(e) => panic!("round {round}: put failed: {e}"),
            }
            next_key += 1;
            if !audited_mid_resize && dev.resize_in_progress() {
                audited_mid_resize = true;
                mid_resize_audits += 1;
                assert_clean(&dev.audit(&mut auditor), &format!("round {round} mid-resize"));
            }
        }

        // Churn: overwrite and delete from the oldest third, making the
        // stale pages GC needs while the resize is still migrating.
        for i in 0..8usize {
            if live.len() > 3 * i {
                let k = live[i * 3];
                match dev.put(&key(k), &val(k, round + 1)) {
                    Ok(()) | Err(KvError::KeyRejected) | Err(KvError::KeyCollision) => {}
                    Err(e) => panic!("round {round}: overwrite failed: {e}"),
                }
            }
        }
        for _ in 0..8 {
            if live.len() > 16 {
                let k = live.remove(0);
                match dev.delete(&key(k)) {
                    Ok(()) | Err(KvError::KeyNotFound) => {}
                    Err(e) => panic!("round {round}: delete failed: {e}"),
                }
            }
        }

        // A bounded slice of idle-time migration, then audit the full
        // device state between steps — mid-migration audits are the
        // interesting ones.
        let _ = dev.maintain_idle().expect("maintain_idle");
        if dev.resize_in_progress() {
            mid_resize_audits += 1;
        }
        assert_clean(&dev.audit(&mut auditor), &format!("round {round}"));
    }

    let stats = dev.stats();
    assert!(stats.gc_invocations > 0, "schedule never triggered GC: {stats:?}");
    assert!(
        stats.resizes > 0 || dev.resize_in_progress(),
        "schedule never triggered a resize: {stats:?}"
    );
    assert!(mid_resize_audits > 0, "no audit ever observed an in-flight migration");

    // Drain the remaining migration slices, auditing after each.
    let mut budget = 10_000u32;
    while dev.resize_in_progress() && budget > 0 {
        dev.maintain_idle().expect("maintain_idle");
        budget -= 1;
    }
    assert!(budget > 0, "migration never drained");
    assert_clean(&dev.audit(&mut auditor), "after drain");

    dev.flush().expect("flush");
    assert_clean(&dev.audit(&mut auditor), "final");

    // The data plane survived the adversarial schedule.
    for &k in live.iter().rev().take(64) {
        assert!(dev.get(&key(k)).expect("get").is_some(), "lost key {k}");
    }
}
