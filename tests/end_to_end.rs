//! Cross-crate integration tests: full device stacks under realistic use.

use rhik::baseline::{LsmConfig, MultiLevelConfig};
use rhik::ftl::IndexBackend;
use rhik::kvssd::{DeviceConfig, KvError, KvssdDevice};
use rhik::nand::DeviceProfile;
use rhik::workloads::driver::WorkloadDriver;
use rhik::workloads::keygen::{KeyStream, Keygen};

/// Every index scheme serves the same workload with identical results.
#[test]
fn all_schemes_agree_on_contents() {
    let cfg = DeviceConfig::small();
    let mut rhik = KvssdDevice::rhik(cfg);
    let mut ml = KvssdDevice::multilevel(
        cfg,
        MultiLevelConfig { initial_bits: 2, max_levels: 8, hop_width: 32 },
    );
    let mut lsm = KvssdDevice::lsm(cfg, LsmConfig::default());

    for i in 0..800u64 {
        let key = format!("it-{i:06}");
        let value = format!("value-{}", i * 7);
        rhik.put(key.as_bytes(), value.as_bytes()).unwrap();
        ml.put(key.as_bytes(), value.as_bytes()).unwrap();
        lsm.put(key.as_bytes(), value.as_bytes()).unwrap();
    }
    // Delete a band, update another.
    for i in 100..200u64 {
        let key = format!("it-{i:06}");
        rhik.delete(key.as_bytes()).unwrap();
        ml.delete(key.as_bytes()).unwrap();
        lsm.delete(key.as_bytes()).unwrap();
    }
    for i in 300..400u64 {
        let key = format!("it-{i:06}");
        rhik.put(key.as_bytes(), b"updated").unwrap();
        ml.put(key.as_bytes(), b"updated").unwrap();
        lsm.put(key.as_bytes(), b"updated").unwrap();
    }

    for i in 0..800u64 {
        let key = format!("it-{i:06}");
        let expected: Option<Vec<u8>> = if (100..200).contains(&i) {
            None
        } else if (300..400).contains(&i) {
            Some(b"updated".to_vec())
        } else {
            Some(format!("value-{}", i * 7).into_bytes())
        };
        for (dev_name, got) in [
            ("rhik", rhik.get(key.as_bytes()).unwrap()),
            ("multilevel", ml.get(key.as_bytes()).unwrap()),
            ("lsm", lsm.get(key.as_bytes()).unwrap()),
        ] {
            assert_eq!(got.map(|b| b.to_vec()), expected, "{dev_name} disagrees on key {key}");
        }
    }
    assert_eq!(rhik.key_count(), 700);
    assert_eq!(ml.key_count(), 700);
    assert_eq!(lsm.key_count(), 700);
}

/// RHIK's headline guarantee holds end-to-end, across resizes, GC, and a
/// cold cache.
#[test]
fn rhik_one_flash_read_guarantee_end_to_end() {
    let mut dev = KvssdDevice::rhik(DeviceConfig::small());
    for i in 0..3_000u64 {
        dev.put(format!("guar-{i:08}").as_bytes(), &[1u8; 256]).unwrap();
    }
    dev.flush().unwrap();
    assert!(!dev.index().stats().resizes.is_empty(), "resizes happened");

    for i in 0..3_000u64 {
        assert!(dev.get(format!("guar-{i:08}").as_bytes()).unwrap().is_some());
    }
    let pct = dev.index().stats().pct_lookups_within(1);
    assert!(pct > 100.0 - 1e-9, "≤1-read guarantee violated: {pct}%");
}

/// Mixed sequential/zipfian traffic through the driver, with timing.
#[test]
fn driver_workloads_complete_with_timing() {
    let mut dev = KvssdDevice::rhik(
        DeviceConfig::small().with_profile(DeviceProfile::kvemu_like()).with_async(16),
    );
    let mut fill_gen = Keygen::new(KeyStream::Sequential, 16, 11);
    let fill = WorkloadDriver::fill(&mut dev, &mut fill_gen, 500, 2048).unwrap();
    assert_eq!(fill.puts, 500);
    assert!(fill.sim_ns > 0);

    let mut zipf_gen = Keygen::new(KeyStream::Zipf { population: 500, theta: 0.9 }, 16, 12);
    let read = WorkloadDriver::read(&mut dev, &mut zipf_gen, 1_000).unwrap();
    assert_eq!(read.gets + read.errors, 1_000);
    assert_eq!(read.errors, 0, "zipf draws stay within the filled population");
    assert!(read.bytes_per_sec() > 0.0);
}

/// Async mode outruns sync mode on the same workload (Fig. 6's split).
#[test]
fn async_beats_sync_throughput() {
    let value = vec![0u8; 16 * 1024];
    let run = |cfg: DeviceConfig| {
        let mut dev = KvssdDevice::rhik(cfg);
        for i in 0..200u64 {
            dev.put(format!("t-{i:06}").as_bytes(), &value).unwrap();
        }
        dev.elapsed_secs()
    };
    let sync_cfg = DeviceConfig::small().with_profile(DeviceProfile::kvemu_like());
    let async_cfg = sync_cfg.with_async(32);
    let sync_time = run(sync_cfg);
    let async_time = run(async_cfg);
    assert!(async_time < sync_time * 0.8, "async {async_time}s not faster than sync {sync_time}s");
}

/// Media faults surface as clean errors, not corruption or panics.
#[test]
fn injected_read_fault_is_contained() {
    let mut dev = KvssdDevice::rhik(DeviceConfig::small());
    dev.put(b"victim", &[9u8; 6000]).unwrap();
    dev.flush().unwrap(); // seal the victim's head page
    dev.put(b"bystander", b"fine").unwrap();
    dev.flush().unwrap();

    // Find the victim's head page via the index and poison it.
    let head = dev.locate(b"victim").unwrap().unwrap();
    assert_ne!(Some(head), dev.locate(b"bystander").unwrap(), "distinct head pages");
    dev.ftl_mut().faults_mut().fail_read(head);

    match dev.get(b"victim") {
        // Typed fault carrying the failing physical address, so hosts can
        // correlate it with the device's fault plan.
        Err(KvError::ReadFault { ppa }) => assert_eq!(ppa, head),
        other => panic!("expected read fault, got {other:?}"),
    }
    // Other keys unaffected; clearing the fault restores the victim.
    assert_eq!(&dev.get(b"bystander").unwrap().unwrap()[..], b"fine");
    dev.ftl_mut().faults_mut().clear_read(head);
    assert_eq!(dev.get(b"victim").unwrap().unwrap().len(), 6000);
}
